// Package grid defines the communication topologies HEX runs on: the
// cylindric hexagonal grid of the paper (Fig. 1) and the alternative
// circular "doubling-layer" topology sketched in Section 5 (Fig. 21).
//
// Topologies are represented as a layered directed Graph. Every node in a
// layer ℓ > 0 has up to four incoming links, each classified by the Role it
// plays at the receiver (left, lower-left, lower-right, right); Algorithm 1's
// firing guard is defined over adjacent Role pairs.
package grid

import "fmt"

// Role identifies which of a node's inputs an incoming link drives.
// The order of the constants is the geometric left-to-right order around
// the bottom half of the node, which is what makes "adjacent pair" guards
// meaningful. The outer roles exist only in the augmented HEX+ topology of
// Section 5 ("connecting each node to additional in-neighbors from the
// previous layer"); plain HEX uses left, lower-left, lower-right, right.
type Role uint8

const (
	RoleLeft Role = iota
	// RoleLowerLeftOuter is the HEX+ input from (ℓ−1, i−1).
	RoleLowerLeftOuter
	RoleLowerLeft
	RoleLowerRight
	// RoleLowerRightOuter is the HEX+ input from (ℓ−1, i+2).
	RoleLowerRightOuter
	RoleRight
	// NumRoles is the number of distinct input roles a node can have.
	NumRoles
)

// String returns the paper's name for the role.
func (r Role) String() string {
	switch r {
	case RoleLeft:
		return "left"
	case RoleLowerLeftOuter:
		return "lower-left-outer"
	case RoleLowerLeft:
		return "lower-left"
	case RoleLowerRight:
		return "lower-right"
	case RoleLowerRightOuter:
		return "lower-right-outer"
	case RoleRight:
		return "right"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// GuardPairs lists the firing guard of Algorithm 1 on the plain HEX grid:
// a node triggers once it has memorized trigger messages from the (left and
// lower-left), (lower-left and lower-right), or (lower-right and right)
// neighbors.
var GuardPairs = [][2]Role{
	{RoleLeft, RoleLowerLeft},
	{RoleLowerLeft, RoleLowerRight},
	{RoleLowerRight, RoleRight},
}

// HexPlusGuardPairs extends the guard to the six geometrically ordered
// inputs of the HEX+ topology: every pair of adjacent inputs triggers.
var HexPlusGuardPairs = [][2]Role{
	{RoleLeft, RoleLowerLeftOuter},
	{RoleLowerLeftOuter, RoleLowerLeft},
	{RoleLowerLeft, RoleLowerRight},
	{RoleLowerRight, RoleLowerRightOuter},
	{RoleLowerRightOuter, RoleRight},
}

// InLink is an incoming link as seen from its destination node.
type InLink struct {
	From int  // source node id
	Role Role // input the link drives at the destination
}

// OutLink is an outgoing link as seen from its source node.
type OutLink struct {
	To   int  // destination node id
	Role Role // input the link drives at the destination
	// InIdx is the index into In(To) of the first incoming link whose From
	// is this link's source: the input a message over this link drives at
	// the receiver. It is precomputed at build time so message delivery
	// needs no per-event scan of the receiver's inputs. ("First" matters on
	// narrow wrap-around grids where one source can drive two inputs of the
	// same destination; receivers memorize such a message on the
	// lowest-Role input, matching a linear scan over the role-sorted
	// inputs.)
	InIdx int32
}

// Graph is a layered directed communication graph. Layer 0 holds the clock
// sources; nodes in higher layers run the HEX forwarding algorithm. A Graph
// is immutable after construction.
type Graph struct {
	layerOf    []int
	layers     [][]int
	in         [][]InLink
	out        [][]OutLink
	guardPairs [][2]Role
	// colOf/numCols are the column metadata of column-structured topologies
	// (HEX, HEX+): every node belongs to a column, and links only connect
	// nearby columns. The wedge-parallel engine partitions by column ranges;
	// topologies without columns (doubling) leave colOf nil and run serially.
	colOf   []int32
	numCols int
}

// Columns returns each node's column index and the column count, when the
// topology is column-structured; ok is false otherwise (e.g. the doubling
// topology). The returned slice must not be modified.
func (g *Graph) Columns() (colOf []int32, numCols int, ok bool) {
	return g.colOf, g.numCols, g.colOf != nil
}

// GuardPairs returns the firing guard of this topology: the list of input
// pairs whose joint memorization triggers a node. Plain HEX and the
// doubling topology use Algorithm 1's three pairs; HEX+ uses five.
func (g *Graph) GuardPairs() [][2]Role { return g.guardPairs }

// builder incrementally constructs a Graph.
type builder struct {
	g Graph
}

func newBuilder() *builder { return &builder{} }

// addNode creates a node in the given layer and returns its id. Layers must
// be introduced in nondecreasing order starting from 0.
func (b *builder) addNode(layer int) int {
	id := len(b.g.layerOf)
	b.g.layerOf = append(b.g.layerOf, layer)
	for len(b.g.layers) <= layer {
		b.g.layers = append(b.g.layers, nil)
	}
	b.g.layers[layer] = append(b.g.layers[layer], id)
	b.g.in = append(b.g.in, nil)
	b.g.out = append(b.g.out, nil)
	return id
}

// addLink adds a directed link from node `from` to node `to`, driving input
// `role` at the destination.
func (b *builder) addLink(from, to int, role Role) {
	b.g.in[to] = append(b.g.in[to], InLink{From: from, Role: role})
	b.g.out[from] = append(b.g.out[from], OutLink{To: to, Role: role})
}

// setColumns records column metadata for a grid whose node ids enumerate
// columns row-major: node n lives in column n % w.
func (b *builder) setColumns(w int) {
	b.g.numCols = w
	b.g.colOf = make([]int32, len(b.g.layerOf))
	for n := range b.g.colOf {
		b.g.colOf[n] = int32(n % w)
	}
}

// build finalizes the graph, sorting incoming links by role for stable
// iteration order and precomputing the reverse-edge index (OutLink.InIdx).
// The default guard is Algorithm 1's three pairs.
func (b *builder) build() *Graph {
	for n := range b.g.in {
		links := b.g.in[n]
		// Insertion sort by Role; at most six links per node.
		for i := 1; i < len(links); i++ {
			for j := i; j > 0 && links[j].Role < links[j-1].Role; j-- {
				links[j], links[j-1] = links[j-1], links[j]
			}
		}
	}
	// Resolve each out-link's input index at its destination, after the
	// role sort above has fixed the final in-link order.
	for n := range b.g.out {
		outs := b.g.out[n]
		for k := range outs {
			outs[k].InIdx = -1
			for i, l := range b.g.in[outs[k].To] {
				if l.From == n {
					outs[k].InIdx = int32(i)
					break
				}
			}
			if outs[k].InIdx < 0 {
				panic("grid: out-link without matching in-link")
			}
		}
	}
	if b.g.guardPairs == nil {
		b.g.guardPairs = GuardPairs
	}
	return &b.g
}

// NumNodes returns the total number of nodes.
func (g *Graph) NumNodes() int { return len(g.layerOf) }

// NumLayers returns the number of layers (L+1 for a HEX grid of length L).
func (g *Graph) NumLayers() int { return len(g.layers) }

// LayerOf returns the layer index of node n.
func (g *Graph) LayerOf(n int) int { return g.layerOf[n] }

// Layer returns the node ids in layer l, in column order. The returned slice
// must not be modified.
func (g *Graph) Layer(l int) []int { return g.layers[l] }

// In returns node n's incoming links sorted by Role. The returned slice must
// not be modified.
func (g *Graph) In(n int) []InLink { return g.in[n] }

// Out returns node n's outgoing links. The returned slice must not be
// modified.
func (g *Graph) Out(n int) []OutLink { return g.out[n] }

// inFromRole returns the source of n's incoming link with the given role.
func (g *Graph) inFromRole(n int, role Role) (int, bool) {
	for _, l := range g.in[n] {
		if l.Role == role {
			return l.From, true
		}
	}
	return 0, false
}

// LeftNeighbor returns the node whose output drives n's left input, i.e.
// n's same-layer left neighbor, if any.
func (g *Graph) LeftNeighbor(n int) (int, bool) { return g.inFromRole(n, RoleLeft) }

// RightNeighbor returns n's same-layer right neighbor, if any.
func (g *Graph) RightNeighbor(n int) (int, bool) { return g.inFromRole(n, RoleRight) }

// LowerLeftNeighbor returns the node driving n's lower-left input, if any.
func (g *Graph) LowerLeftNeighbor(n int) (int, bool) { return g.inFromRole(n, RoleLowerLeft) }

// LowerRightNeighbor returns the node driving n's lower-right input, if any.
func (g *Graph) LowerRightNeighbor(n int) (int, bool) { return g.inFromRole(n, RoleLowerRight) }

// InNeighborsOf returns the distinct sources of n's incoming links.
func (g *Graph) InNeighborsOf(n int) []int {
	links := g.in[n]
	out := make([]int, 0, len(links))
	for _, l := range links {
		out = append(out, l.From)
	}
	return out
}

// OutNeighborsOf returns the distinct destinations of n's outgoing links.
func (g *Graph) OutNeighborsOf(n int) []int {
	links := g.out[n]
	out := make([]int, 0, len(links))
	for _, l := range links {
		out = append(out, l.To)
	}
	return out
}
