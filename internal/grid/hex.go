package grid

import "fmt"

// Hex is the cylindric hexagonal grid of the paper (Fig. 1): layers
// 0, …, L of W columns each, with column arithmetic modulo W.
//
// Node (ℓ, i), ℓ > 0, receives from its left neighbor (ℓ, i−1), its right
// neighbor (ℓ, i+1), its lower-left neighbor (ℓ−1, i) and its lower-right
// neighbor (ℓ−1, i+1); it sends to its left, right, upper-left (ℓ+1, i−1)
// and upper-right (ℓ+1, i) neighbors. Layer-0 nodes are clock sources with
// outgoing links to layer 1 only.
type Hex struct {
	*Graph
	// L is the grid length: the highest layer index. The grid has L+1 layers.
	L int
	// W is the grid width: the number of columns.
	W int
}

// NewHex constructs a cylindric hexagonal grid with layers 0..L and W
// columns. It requires L ≥ 1 and W ≥ 3 (the paper's skew analysis assumes
// W > 2, and with W < 3 the modular neighbor structure degenerates).
func NewHex(L, W int) (*Hex, error) {
	if L < 1 {
		return nil, fmt.Errorf("grid: length L must be at least 1, got %d", L)
	}
	if W < 3 {
		return nil, fmt.Errorf("grid: width W must be at least 3, got %d", W)
	}
	b := newBuilder()
	for l := 0; l <= L; l++ {
		for i := 0; i < W; i++ {
			b.addNode(l)
		}
	}
	id := func(l, i int) int { return l*W + mod(i, W) }
	for l := 1; l <= L; l++ {
		for i := 0; i < W; i++ {
			n := id(l, i)
			b.addLink(id(l, i-1), n, RoleLeft)
			b.addLink(id(l-1, i), n, RoleLowerLeft)
			b.addLink(id(l-1, i+1), n, RoleLowerRight)
			b.addLink(id(l, i+1), n, RoleRight)
		}
	}
	b.setColumns(W)
	return &Hex{Graph: b.build(), L: L, W: W}, nil
}

// MustHex is NewHex that panics on invalid parameters; for tests and
// examples with constant sizes.
func MustHex(L, W int) *Hex {
	h, err := NewHex(L, W)
	if err != nil {
		panic(err)
	}
	return h
}

// mod returns i modulo w in [0, w), also for negative i.
func mod(i, w int) int {
	m := i % w
	if m < 0 {
		m += w
	}
	return m
}

// NodeID returns the node id of (layer, col). The column is taken modulo W;
// the layer must be in [0, L].
func (h *Hex) NodeID(layer, col int) int {
	if layer < 0 || layer > h.L {
		panic(fmt.Sprintf("grid: layer %d out of range [0,%d]", layer, h.L))
	}
	return layer*h.W + mod(col, h.W)
}

// Coord returns the (layer, column) of node id n.
func (h *Hex) Coord(n int) (layer, col int) { return n / h.W, n % h.W }

// CyclicDistance returns the cyclic column distance |i−j|_W of
// Definition 3: min{(i−j) mod W, (j−i) mod W}.
func CyclicDistance(i, j, w int) int {
	d := mod(i-j, w)
	if w-d < d {
		return w - d
	}
	return d
}

// CyclicDistance returns |i−j|_W for this grid's width.
func (h *Hex) CyclicDistance(i, j int) int { return CyclicDistance(i, j, h.W) }

// Diameter returns the hop diameter of the undirected communication graph,
// which for the cylindric grid is Θ(L + W).
func (h *Hex) Diameter() int {
	half := h.W / 2
	return h.L + half
}
