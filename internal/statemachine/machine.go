// Package statemachine is an explicit, self-contained interpreter of the
// two asynchronous state machines of the paper's Fig. 7: the firing machine
// (ready → firing → sleeping → ready, clearing memory flags on the last
// transition) and the per-link memory-flag machine (ready → memorize →
// ready on link timeout). It models a *single* HEX node driven by a timed
// sequence of input edges — the software analogue of the VHDL unit
// testbench — and is implemented independently of internal/core so the two
// can be checked against each other (see the conformance tests).
package statemachine

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/sim"
)

// FireState is the state of the Fig. 7a machine.
type FireState uint8

const (
	// Ready: waiting for the trigger condition of Algorithm 1.
	Ready FireState = iota
	// Sleeping: pulse emitted, ignoring the guard until the sleep timer
	// expires. (The transient "firing" state of Fig. 7a collapses to the
	// instant of pulse emission in this zero-delay model.)
	Sleeping
)

// String names the state.
func (s FireState) String() string {
	switch s {
	case Ready:
		return "ready"
	case Sleeping:
		return "sleeping"
	}
	return fmt.Sprintf("FireState(%d)", uint8(s))
}

// Input is one rising edge on an input port.
type Input struct {
	Role grid.Role
	At   sim.Time
}

// Config parameterizes the machine. Timers are deterministic here (the
// analysis interval [T−, T+] collapses to a point), which is what makes
// exact conformance against the network simulator checkable.
type Config struct {
	// Guard lists the input pairs that trigger the node; nil uses
	// Algorithm 1's pairs.
	Guard [][2]grid.Role
	// TLink is the memory-flag timeout; 0 disables flag expiry.
	TLink sim.Time
	// TSleep is the sleep duration after firing. Must be positive.
	TSleep sim.Time
	// Stuck1 marks inputs that are permanently high (a Byzantine neighbor
	// with constant-1 output).
	Stuck1 [grid.NumRoles]bool
}

// Machine is a single HEX node.
type Machine struct {
	cfg   Config
	state FireState
	// set and expiry model the per-input flag machines.
	set    [grid.NumRoles]bool
	expiry [grid.NumRoles]sim.Time
	wakeAt sim.Time
	fires  []sim.Time
}

// New returns a machine in the initial state of Fig. 7: firing machine
// ready, all flag machines ready (except stuck-1 inputs, which read high).
func New(cfg Config) (*Machine, error) {
	if cfg.TSleep <= 0 {
		return nil, fmt.Errorf("statemachine: TSleep must be positive")
	}
	if cfg.Guard == nil {
		cfg.Guard = grid.GuardPairs
	}
	m := &Machine{cfg: cfg}
	for r := range m.expiry {
		m.expiry[r] = sim.MaxTime
		if cfg.Stuck1[r] {
			m.set[r] = true
		}
	}
	return m, nil
}

// State returns the firing machine's current state.
func (m *Machine) State() FireState { return m.state }

// Fires returns the pulse emission times so far.
func (m *Machine) Fires() []sim.Time { return m.fires }

// guard evaluates the trigger condition over the current flags.
func (m *Machine) guard() bool {
	for _, p := range m.cfg.Guard {
		if m.set[p[0]] && m.set[p[1]] {
			return true
		}
	}
	return false
}

// advanceTo retires every timer that expires strictly before t, in time
// order, updating flags and possibly waking (and re-firing on stuck-1
// pairs).
func (m *Machine) advanceTo(t sim.Time) {
	for {
		// Earliest pending deadline.
		next := sim.MaxTime
		for _, e := range m.expiry {
			if e < next {
				next = e
			}
		}
		if m.state == Sleeping && m.wakeAt < next {
			next = m.wakeAt
		}
		if next > t {
			return
		}
		if m.state == Sleeping && m.wakeAt == next {
			m.wake(next)
			continue
		}
		for r := range m.expiry {
			if m.expiry[r] == next {
				m.set[r] = m.cfg.Stuck1[r] // stuck-1 inputs never clear
				m.expiry[r] = sim.MaxTime
			}
		}
	}
}

// wake performs the sleeping → ready transition: clear all memory flags
// and re-evaluate the guard (permanently high inputs may re-trigger).
func (m *Machine) wake(at sim.Time) {
	m.state = Ready
	m.wakeAt = sim.MaxTime
	for r := range m.set {
		m.set[r] = m.cfg.Stuck1[r]
		m.expiry[r] = sim.MaxTime
	}
	m.maybeFire(at)
}

// maybeFire emits a pulse if ready and the guard holds.
func (m *Machine) maybeFire(at sim.Time) {
	if m.state != Ready || !m.guard() {
		return
	}
	m.fires = append(m.fires, at)
	m.state = Sleeping
	m.wakeAt = at + m.cfg.TSleep
}

// edge processes a rising input edge at time `at`.
func (m *Machine) edge(role grid.Role, at sim.Time) {
	if m.set[role] {
		// Flag machine already in memorize: the edge is absorbed and the
		// running timer is NOT restarted (Fig. 7b).
		return
	}
	m.set[role] = true
	if m.cfg.TLink > 0 && !m.cfg.Stuck1[role] {
		m.expiry[role] = at + m.cfg.TLink
	}
	m.maybeFire(at)
}

// Run feeds the machine a set of input edges and advances it to horizon,
// returning all pulse emission times. Inputs need not be sorted. Run can
// be called once per machine.
func (m *Machine) Run(inputs []Input, horizon sim.Time) []sim.Time {
	sorted := append([]Input(nil), inputs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	// A stuck-1 pair may fire the machine at time 0 before any input.
	m.maybeFire(0)
	for _, in := range sorted {
		if in.At > horizon {
			break
		}
		m.advanceTo(in.At)
		m.edge(in.Role, in.At)
	}
	m.advanceTo(horizon)
	return m.Fires()
}
