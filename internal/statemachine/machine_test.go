package statemachine

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
)

func mustNew(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero TSleep accepted")
	}
}

func TestCentralTrigger(t *testing.T) {
	m := mustNew(t, Config{TSleep: 100})
	fires := m.Run([]Input{
		{Role: grid.RoleLowerLeft, At: 10},
		{Role: grid.RoleLowerRight, At: 25},
	}, 1000)
	if len(fires) != 1 || fires[0] != 25 {
		t.Errorf("fires = %v, want [25]", fires)
	}
	if m.State() != Ready { // woke at 125
		t.Errorf("state = %v", m.State())
	}
}

func TestLeftAndRightTrigger(t *testing.T) {
	m := mustNew(t, Config{TSleep: 100})
	fires := m.Run([]Input{
		{Role: grid.RoleLeft, At: 5},
		{Role: grid.RoleLowerLeft, At: 12},
	}, 1000)
	if len(fires) != 1 || fires[0] != 12 {
		t.Errorf("left-trigger fires = %v", fires)
	}
	m = mustNew(t, Config{TSleep: 100})
	fires = m.Run([]Input{
		{Role: grid.RoleLowerRight, At: 7},
		{Role: grid.RoleRight, At: 9},
	}, 1000)
	if len(fires) != 1 || fires[0] != 9 {
		t.Errorf("right-trigger fires = %v", fires)
	}
}

func TestNonAdjacentPairDoesNotFire(t *testing.T) {
	m := mustNew(t, Config{TSleep: 100})
	fires := m.Run([]Input{
		{Role: grid.RoleLeft, At: 5},
		{Role: grid.RoleRight, At: 9},
		{Role: grid.RoleLeft, At: 50}, // absorbed, flag already set
	}, 1000)
	if len(fires) != 0 {
		t.Errorf("(left,right) fired Algorithm 1's guard: %v", fires)
	}
}

func TestLinkTimeoutForgets(t *testing.T) {
	m := mustNew(t, Config{TSleep: 100, TLink: 20})
	fires := m.Run([]Input{
		{Role: grid.RoleLowerLeft, At: 0},
		{Role: grid.RoleLowerRight, At: 30}, // lower-left forgotten at 20
	}, 1000)
	if len(fires) != 0 {
		t.Errorf("fired despite expired flag: %v", fires)
	}
	// Within the timeout it still fires.
	m = mustNew(t, Config{TSleep: 100, TLink: 20})
	fires = m.Run([]Input{
		{Role: grid.RoleLowerLeft, At: 0},
		{Role: grid.RoleLowerRight, At: 19},
	}, 1000)
	if len(fires) != 1 {
		t.Errorf("did not fire within timeout: %v", fires)
	}
}

func TestAbsorbedEdgeDoesNotRestartTimer(t *testing.T) {
	// Second edge on a memorized input must not extend the timeout
	// (Fig. 7b has no re-arm transition in memorize).
	m := mustNew(t, Config{TSleep: 100, TLink: 20})
	fires := m.Run([]Input{
		{Role: grid.RoleLowerLeft, At: 0},
		{Role: grid.RoleLowerLeft, At: 15}, // absorbed
		{Role: grid.RoleLowerRight, At: 25},
	}, 1000)
	if len(fires) != 0 {
		t.Errorf("absorbed edge extended the timer: %v", fires)
	}
}

func TestSleepBlocksAndWakeClears(t *testing.T) {
	m := mustNew(t, Config{TSleep: 100})
	fires := m.Run([]Input{
		{Role: grid.RoleLowerLeft, At: 10},
		{Role: grid.RoleLowerRight, At: 10},
		// Arrivals during sleep are memorized but cleared at wake (110).
		{Role: grid.RoleLeft, At: 50},
		{Role: grid.RoleLowerLeft, At: 60},
		// After wake only one fresh edge: no fire.
		{Role: grid.RoleLowerRight, At: 200},
	}, 1000)
	if len(fires) != 1 || fires[0] != 10 {
		t.Errorf("fires = %v, want [10]", fires)
	}
}

func TestSecondPulseAfterWake(t *testing.T) {
	m := mustNew(t, Config{TSleep: 100})
	fires := m.Run([]Input{
		{Role: grid.RoleLowerLeft, At: 10},
		{Role: grid.RoleLowerRight, At: 10},
		{Role: grid.RoleLowerLeft, At: 300},
		{Role: grid.RoleLowerRight, At: 320},
	}, 1000)
	if len(fires) != 2 || fires[1] != 320 {
		t.Errorf("fires = %v, want [10 320]", fires)
	}
}

func TestStuck1PairFiresImmediately(t *testing.T) {
	cfg := Config{TSleep: 100}
	cfg.Stuck1[grid.RoleLowerLeft] = true
	cfg.Stuck1[grid.RoleLowerRight] = true
	m := mustNew(t, cfg)
	fires := m.Run(nil, 350)
	// Fires at 0, wakes at 100 and refires immediately, etc.
	want := []sim.Time{0, 100, 200, 300}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestStuck1SingleNeedsOneMessage(t *testing.T) {
	cfg := Config{TSleep: 1000, TLink: 50}
	cfg.Stuck1[grid.RoleLowerLeft] = true
	m := mustNew(t, cfg)
	fires := m.Run([]Input{{Role: grid.RoleLowerRight, At: 42}}, 2000)
	if len(fires) != 1 || fires[0] != 42 {
		t.Errorf("fires = %v, want [42]", fires)
	}
}

func TestHexPlusGuard(t *testing.T) {
	m := mustNew(t, Config{TSleep: 100, Guard: grid.HexPlusGuardPairs})
	fires := m.Run([]Input{
		{Role: grid.RoleLowerLeftOuter, At: 10},
		{Role: grid.RoleLowerLeft, At: 20},
	}, 1000)
	if len(fires) != 1 || fires[0] != 20 {
		t.Errorf("HEX+ outer pair did not fire: %v", fires)
	}
	// The same pair is meaningless under the plain guard.
	m = mustNew(t, Config{TSleep: 100})
	fires = m.Run([]Input{
		{Role: grid.RoleLowerLeftOuter, At: 10},
		{Role: grid.RoleLowerLeft, At: 20},
	}, 1000)
	if len(fires) != 0 {
		t.Errorf("plain guard fired on outer input: %v", fires)
	}
}

func TestUnsortedInputs(t *testing.T) {
	m := mustNew(t, Config{TSleep: 100})
	fires := m.Run([]Input{
		{Role: grid.RoleLowerRight, At: 25},
		{Role: grid.RoleLowerLeft, At: 10},
	}, 1000)
	if len(fires) != 1 || fires[0] != 25 {
		t.Errorf("unsorted inputs broke the machine: %v", fires)
	}
}

func TestHorizonCutsInputs(t *testing.T) {
	m := mustNew(t, Config{TSleep: 100})
	fires := m.Run([]Input{
		{Role: grid.RoleLowerLeft, At: 10},
		{Role: grid.RoleLowerRight, At: 2000},
	}, 1000)
	if len(fires) != 0 {
		t.Errorf("input beyond horizon processed: %v", fires)
	}
}

func TestFireStateString(t *testing.T) {
	if Ready.String() != "ready" || Sleeping.String() != "sleeping" {
		t.Error("state names wrong")
	}
}
