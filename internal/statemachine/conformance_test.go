package statemachine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/trace"
)

// TestConformanceAgainstNetwork replays every forwarding node of a traced
// network simulation through the independent single-node state machine and
// requires identical fire times — a cross-implementation check of the
// Fig. 7 semantics. Timers are fixed (T− = T+) so both implementations are
// deterministic; delays are drawn randomly per message by the network.
func TestConformanceAgainstNetwork(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		h := grid.MustHex(10, 8)
		params := core.Params{
			Bounds:    delay.Paper,
			TLinkMin:  33333 * sim.Picosecond,
			TLinkMax:  33333 * sim.Picosecond,
			TSleepMin: 86419 * sim.Picosecond,
			TSleepMax: 86419 * sim.Picosecond,
		}
		plan := fault.NewPlan(h.NumNodes())
		if seed%2 == 1 {
			rng := sim.NewRNG(seed)
			placed, err := fault.PlaceRandom(h.Graph, 2, nil, rng, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range placed {
				plan.SetBehavior(n, fault.Byzantine)
			}
			plan.RandomizeByzantine(h.Graph, rng)
		}
		sched := source.NewSchedule(source.UniformDPlus, h.W, 3, delay.Paper,
			300*sim.Nanosecond, sim.NewRNG(seed+100))
		rec := &trace.Recorder{}
		res, err := core.Run(core.Config{
			Graph:    h.Graph,
			Params:   params,
			Delay:    delay.Uniform{Bounds: delay.Paper},
			Faults:   plan,
			Schedule: sched,
			Seed:     seed,
			Trace:    rec,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Per-node accepted input edges, in network event order.
		inputs := make(map[int][]Input)
		for _, e := range rec.Events {
			if e.Kind != trace.KindDeliver || !e.Accepted {
				continue
			}
			role := grid.NumRoles
			for _, l := range h.In(e.Node) {
				if l.From == e.Peer {
					role = l.Role
					break
				}
			}
			if role == grid.NumRoles {
				t.Fatalf("delivery over unknown link %d→%d", e.Peer, e.Node)
			}
			inputs[e.Node] = append(inputs[e.Node], Input{Role: role, At: e.At})
		}

		for n := 0; n < h.NumNodes(); n++ {
			if h.LayerOf(n) == 0 || plan.IsFaulty(n) {
				continue
			}
			cfg := Config{TLink: params.TLinkMin, TSleep: params.TSleepMin}
			for _, l := range h.In(n) {
				if plan.Link(l.From, n) == fault.LinkStuck1 {
					cfg.Stuck1[l.Role] = true
				}
			}
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fires := m.Run(inputs[n], res.Horizon)
			want := res.Triggers[n]
			if len(fires) != len(want) {
				t.Fatalf("seed %d node %d: machine fired %d times (%v), network %d (%v)",
					seed, n, len(fires), fires, len(want), want)
			}
			for i := range want {
				if fires[i] != want[i] {
					t.Fatalf("seed %d node %d fire %d: machine %v, network %v",
						seed, n, i, fires[i], want[i])
				}
			}
		}
	}
}

// TestConformanceHexPlus repeats the cross-check on the augmented topology
// with its five-pair guard.
func TestConformanceHexPlus(t *testing.T) {
	h := grid.MustHexPlus(6, 8)
	params := core.Params{
		Bounds:    delay.Paper,
		TSleepMin: sim.Millisecond,
		TSleepMax: sim.Millisecond,
	}
	rec := &trace.Recorder{}
	res, err := core.Run(core.Config{
		Graph:    h.Graph,
		Params:   params,
		Delay:    delay.Uniform{Bounds: delay.Paper},
		Faults:   fault.NewPlan(h.NumNodes()),
		Schedule: source.SinglePulse(make([]sim.Time, h.W)),
		Seed:     5,
		Trace:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make(map[int][]Input)
	for _, e := range rec.Events {
		if e.Kind != trace.KindDeliver || !e.Accepted {
			continue
		}
		for _, l := range h.In(e.Node) {
			if l.From == e.Peer {
				inputs[e.Node] = append(inputs[e.Node], Input{Role: l.Role, At: e.At})
				break
			}
		}
	}
	for n := 0; n < h.NumNodes(); n++ {
		if h.LayerOf(n) == 0 {
			continue
		}
		m, err := New(Config{Guard: grid.HexPlusGuardPairs, TSleep: params.TSleepMin})
		if err != nil {
			t.Fatal(err)
		}
		fires := m.Run(inputs[n], res.Horizon)
		if len(fires) != 1 || fires[0] != res.Triggers[n][0] {
			t.Fatalf("node %d: machine %v, network %v", n, fires, res.Triggers[n])
		}
	}
}
