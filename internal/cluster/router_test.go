package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// node is one in-process fleet backend: a service.Service behind a real
// TCP listener so it can be killed (connection-refused, like a crashed
// machine) and later restarted on the same address with the same store
// directory.
type node struct {
	t    *testing.T
	dir  string // store directory; "" disables the durable tier
	addr string // host:port, fixed across restarts
	opts service.Options

	svc *service.Service
	srv *http.Server
}

// startNode boots a backend. addr "" picks a fresh port.
func startNode(t *testing.T, dir, addr string, opts service.Options) *node {
	t.Helper()
	n := &node{t: t, dir: dir, addr: addr, opts: opts}
	n.start()
	t.Cleanup(func() { n.kill() })
	return n
}

func (n *node) start() {
	n.t.Helper()
	opts := n.opts
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	if n.dir != "" {
		st, err := store.Open(n.dir, 0)
		if err != nil {
			n.t.Fatal(err)
		}
		opts.Store = st
	}
	addr := n.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		n.t.Fatal(err)
	}
	n.addr = lis.Addr().String()
	n.svc = service.New(opts)
	n.srv = &http.Server{Handler: n.svc.Handler()}
	go n.srv.Serve(lis)
}

func (n *node) url() string { return "http://" + n.addr }

// kill closes the listener and all connections (a crash, as seen from
// the router), then drains the service. Idempotent.
func (n *node) kill() {
	if n.srv == nil {
		return
	}
	n.srv.Close()
	n.srv = nil
	n.svc.Close()
}

// restart recovers the node on its original address and store directory.
func (n *node) restart() {
	n.t.Helper()
	if n.srv != nil {
		n.t.Fatal("restart of a live node")
	}
	n.start()
}

// startFleet boots count backends (each with its own store dir when
// withStores) and a router over them with test-fast health settings.
func startFleet(t *testing.T, count int, withStores bool, ropts Options) (*Router, *httptest.Server, []*node) {
	t.Helper()
	nodes := make([]*node, count)
	peers := make([]string, count)
	for i := range nodes {
		dir := ""
		if withStores {
			dir = t.TempDir()
		}
		nodes[i] = startNode(t, dir, "", service.Options{})
		peers[i] = nodes[i].url()
	}
	ropts.Peers = peers
	if ropts.HealthInterval == 0 {
		ropts.HealthInterval = 50 * time.Millisecond
	}
	if ropts.HealthTimeout == 0 {
		ropts.HealthTimeout = 500 * time.Millisecond
	}
	if ropts.FailThreshold == 0 {
		ropts.FailThreshold = 1
	}
	if ropts.Backoff == 0 {
		ropts.Backoff = 10 * time.Millisecond
	}
	if ropts.Logger == nil {
		ropts.Logger = quietLogger()
	}
	rt, err := New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)
	return rt, rsrv, nodes
}

func postRun(t *testing.T, client *http.Client, base, body string) (*http.Response, string) {
	t.Helper()
	resp, err := client.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// runKey derives the canonical key of a request body the same way both
// router and backends do.
func runKey(t *testing.T, body string) string {
	t.Helper()
	var rr service.RunRequest
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	if err := rr.Normalize(service.Options{}.Resolved()); err != nil {
		t.Fatal(err)
	}
	return rr.CanonicalKey()
}

func totalSimRuns(nodes []*node) uint64 {
	var n uint64
	for _, nd := range nodes {
		n += nd.svc.Metrics.SimRuns.Value()
	}
	return n
}

// TestClusterSmokeSingleExecutionFleetWide is the cluster smoke test: N
// identical concurrent requests sprayed at a 3-node fleet's router
// execute exactly one simulation fleet-wide — the router coalesces
// concurrent duplicates, the owning shard coalesces and caches the rest
// — and the fleet drains cleanly afterwards (the registered Cleanups
// deadlocking would fail the test by timeout).
func TestClusterSmokeSingleExecutionFleetWide(t *testing.T) {
	rt, rsrv, nodes := startFleet(t, 3, false, Options{})
	const body = `{"l":120,"w":30,"scenario":"udplus","seed":11}`
	const n = 24

	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, b := postRun(t, rsrv.Client(), rsrv.URL, body)
			codes[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d: body diverges", i)
		}
	}
	if got := totalSimRuns(nodes); got != 1 {
		t.Fatalf("fleet executed %d simulations for %d identical requests, want exactly 1", got, n)
	}
	// Only the key's rendezvous owner may have seen traffic.
	owner := Rank(runKey(t, body), rt.Peers())[0]
	for i, nd := range nodes {
		got := nd.svc.Metrics.Requests["run"].Value()
		if i == owner && got == 0 {
			t.Errorf("owner %d saw no requests", i)
		}
		if i != owner && got != 0 {
			t.Errorf("non-owner %d saw %d requests", i, got)
		}
	}
}

// TestClusterShardsByCanonicalKey sends K distinct requests and checks
// placement is exactly the rendezvous ranking: every request lands on
// its key's owner, each executes once fleet-wide, and repeats are
// answered by the owner's cache without new simulations.
func TestClusterShardsByCanonicalKey(t *testing.T) {
	rt, rsrv, nodes := startFleet(t, 3, false, Options{})
	const k = 9
	owned := make([]uint64, 3)
	for i := 0; i < k; i++ {
		body := fmt.Sprintf(`{"l":30,"w":10,"seed":%d}`, i+1)
		resp, b := postRun(t, rsrv.Client(), rsrv.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d (%s)", i+1, resp.StatusCode, b)
		}
		owned[Rank(runKey(t, body), rt.Peers())[0]]++
	}
	if got := totalSimRuns(nodes); got != k {
		t.Fatalf("fleet executed %d simulations for %d distinct requests, want %d", got, k, k)
	}
	for i, nd := range nodes {
		if got := nd.svc.Metrics.Requests["run"].Value(); got != owned[i] {
			t.Errorf("node %d served %d requests, rendezvous owns %d", i, got, owned[i])
		}
	}
	// Repeats: same requests again — zero new simulations anywhere.
	for i := 0; i < k; i++ {
		body := fmt.Sprintf(`{"l":30,"w":10,"seed":%d}`, i+1)
		if resp, b := postRun(t, rsrv.Client(), rsrv.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat seed %d: status %d (%s)", i+1, resp.StatusCode, b)
		}
	}
	if got := totalSimRuns(nodes); got != k {
		t.Fatalf("repeats executed %d extra simulations, want 0", totalSimRuns(nodes)-k)
	}
}

// corruptStoreDir flips one bit in every record file under dir and
// returns how many files it damaged — the internal/store fault-injection
// technique applied to a dead shard's directory.
func corruptStoreDir(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".rec") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			continue
		}
		data[len(data)/2] ^= 0x10
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

// waitHealthz polls the router's /healthz until it reports wantStatus.
func waitHealthz(t *testing.T, client *http.Client, base, wantStatus string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			var hz healthzResponse
			err = json.NewDecoder(resp.Body).Decode(&hz)
			resp.Body.Close()
			if err == nil && hz.Status == wantStatus {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("router never reported %q", wantStatus)
}

// TestClusterNodeKillRehomeAndCorruptStoreRecovery is the acceptance
// test of the fleet: kill a node mid-load and its keys re-home to the
// rendezvous fallback with every response still byte-identical; then
// corrupt the dead node's store directory (the internal/store
// fault-injection harness' bit-flip applied per record), restart it, and
// prove the quarantine recomputes rather than ever serving corrupt
// bytes.
func TestClusterNodeKillRehomeAndCorruptStoreRecovery(t *testing.T) {
	rt, rsrv, nodes := startFleet(t, 3, true, Options{})
	peers := rt.Peers()

	// Phase 1: warm the fleet with K distinct requests; remember every
	// canonical body and each key's owner.
	const k = 9
	reqBodies := make([]string, k)
	want := make([]string, k)
	owners := make([]int, k)
	for i := 0; i < k; i++ {
		reqBodies[i] = fmt.Sprintf(`{"l":30,"w":10,"scenario":"ramp","seed":%d}`, i+1)
		resp, b := postRun(t, rsrv.Client(), rsrv.URL, reqBodies[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm seed %d: status %d (%s)", i+1, resp.StatusCode, b)
		}
		want[i] = b
		owners[i] = Rank(runKey(t, reqBodies[i]), peers)[0]
	}

	// Pick the victim: the node owning the most keys, so re-homing is
	// well exercised.
	victim := 0
	counts := make([]int, 3)
	for _, o := range owners {
		counts[o]++
	}
	for i, c := range counts {
		if c > counts[victim] {
			victim = i
		}
	}
	if counts[victim] == 0 {
		t.Fatal("no keys to re-home; enlarge k")
	}
	victimSims := nodes[victim].svc.Metrics.SimRuns.Value()

	// Phase 2: kill the victim and spray the full workload concurrently
	// while the router discovers the loss. Every response must succeed
	// and match phase 1 byte-for-byte — surviving shards answer from
	// their caches, the victim's keys re-execute on their rendezvous
	// fallback (determinism makes the recompute byte-identical).
	nodes[victim].kill()
	var wg sync.WaitGroup
	errs := make(chan string, 2*k)
	for round := 0; round < 2; round++ {
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, b := postRun(t, rsrv.Client(), rsrv.URL, reqBodies[i])
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("seed %d: status %d (%s)", i+1, resp.StatusCode, b)
					return
				}
				if b != want[i] {
					errs <- fmt.Sprintf("seed %d: body diverged after node loss", i+1)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}
	if got := rt.Metrics.Rehomes.Value(); got == 0 {
		t.Fatal("no re-homes recorded though the owner of live keys is dead")
	}
	// The victim's keys were re-executed exactly once each on the
	// fallback: fleet-wide sims = k (phase 1) + victim's key count.
	total := totalSimRuns(nodes) // victim's counter still readable post-kill
	if wantTotal := uint64(k + counts[victim]); total != wantTotal {
		t.Fatalf("fleet sims after re-home = %d, want %d (k=%d + %d re-homed)", total, wantTotal, k, counts[victim])
	}
	if nodes[victim].svc.Metrics.SimRuns.Value() != victimSims {
		t.Fatal("dead node executed simulations")
	}
	waitHealthz(t, rsrv.Client(), rsrv.URL, "degraded")

	// Phase 3: mangle every record in the dead node's store directory —
	// the store fault-injection harness' single-bit flip — and restart
	// the node on the same address and directory. Recovery must
	// quarantine every damaged record instead of indexing it.
	flipped := corruptStoreDir(t, nodes[victim].dir)
	if flipped == 0 {
		t.Fatal("victim persisted no records; nothing corrupted")
	}
	nodes[victim].restart()
	st := nodes[victim].svc.Options().Store
	if got := st.Quarantined(); got != uint64(flipped) {
		t.Fatalf("restart quarantined %d records, want %d", got, flipped)
	}
	if got := st.Len(); got != 0 {
		t.Fatalf("restart indexed %d corrupt records, want 0", got)
	}
	waitHealthz(t, rsrv.Client(), rsrv.URL, "ok")

	// Phase 4: the recovered node owns its keys again. Serving them must
	// recompute (quarantine means no disk hit) and the bytes must equal
	// phase 1 exactly — zero corrupt results served, ever.
	for i := 0; i < k; i++ {
		if owners[i] != victim {
			continue
		}
		resp, b := postRun(t, rsrv.Client(), rsrv.URL, reqBodies[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recovered seed %d: status %d (%s)", i+1, resp.StatusCode, b)
		}
		if b != want[i] {
			t.Fatalf("recovered seed %d: body differs from pre-crash result", i+1)
		}
	}
	if got := nodes[victim].svc.Metrics.SimRuns.Value(); got != uint64(counts[victim]) {
		t.Fatalf("recovered node executed %d sims, want %d recomputes", got, counts[victim])
	}
	if got := nodes[victim].svc.Metrics.StoreHits.Value(); got != 0 {
		t.Fatalf("recovered node served %d store hits from a corrupted directory", got)
	}
}

// TestRouterTraceCorrelation pins the fleet-wide observability contract:
// one request through the router yields traces with the same request id
// and the same W3C trace-id in /v1/debug/requests on the router AND on
// the backend that served it.
func TestRouterTraceCorrelation(t *testing.T) {
	_, rsrv, nodes := startFleet(t, 3, false, Options{})
	const rid = "fleet-rid-0001"
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"

	req, err := http.NewRequest(http.MethodPost, rsrv.URL+"/v1/run",
		strings.NewReader(`{"l":20,"w":8,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", rid)
	req.Header.Set("traceparent", "00-"+tid+"-00f067aa0ba902b7-01")
	resp, err := rsrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("router echoed request id %q, want %q", got, rid)
	}

	type snap struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
	}
	fetch := func(base string) []snap {
		t.Helper()
		r, err := http.Get(base + "/v1/debug/requests")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var snaps []snap
		if err := json.NewDecoder(r.Body).Decode(&snaps); err != nil {
			t.Fatal(err)
		}
		return snaps
	}
	find := func(snaps []snap) *snap {
		for i := range snaps {
			if snaps[i].ID == rid {
				return &snaps[i]
			}
		}
		return nil
	}
	rs := find(fetch(rsrv.URL))
	if rs == nil {
		t.Fatal("router ring holds no trace for the request id")
	}
	if rs.TraceID != tid {
		t.Fatalf("router trace_id = %q, want %q", rs.TraceID, tid)
	}
	matches := 0
	for _, nd := range nodes {
		if bs := find(fetch(nd.url())); bs != nil {
			if bs.TraceID != tid {
				t.Fatalf("backend %s trace_id = %q, want %q", nd.url(), bs.TraceID, tid)
			}
			matches++
		}
	}
	if matches != 1 {
		t.Fatalf("request id found on %d backends, want exactly 1 (the owner)", matches)
	}
}

// TestRouterHealthzDegradedAndUnavailable pins the honest /healthz:
// all peers up → ok; some down → degraded (with per-peer detail, still
// HTTP 200 because the fleet still serves); all down → 503.
func TestRouterHealthzDegradedAndUnavailable(t *testing.T) {
	_, rsrv, nodes := startFleet(t, 3, false, Options{})
	waitHealthz(t, rsrv.Client(), rsrv.URL, "ok")

	nodes[1].kill()
	waitHealthz(t, rsrv.Client(), rsrv.URL, "degraded")
	resp, err := rsrv.Client().Get(rsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status = %d, want 200 with JSON detail", resp.StatusCode)
	}
	down := 0
	for _, p := range hz.Peers {
		if !p.Up {
			down++
			if p.URL != nodes[1].url() {
				t.Fatalf("down peer = %s, want %s", p.URL, nodes[1].url())
			}
		}
	}
	if down != 1 {
		t.Fatalf("healthz reports %d down peers, want 1", down)
	}

	nodes[0].kill()
	nodes[2].kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := rsrv.Client().Get(rsrv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz = %d with every peer dead, want 503", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterPassesBackendVerdictsThrough: a backend's deliberate non-2xx
// (here a 400 from a stricter shard) reaches the client with its status
// and body, not converted into a router-side retry or 502.
func TestRouterPassesBackendVerdictsThrough(t *testing.T) {
	// Backends admit only tiny grids; the router's own limits are the
	// defaults, so the request passes the router and is refused by the
	// shard.
	nodes := make([]*node, 2)
	peers := make([]string, 2)
	for i := range nodes {
		nodes[i] = startNode(t, "", "", service.Options{MaxNodes: 100})
		peers[i] = nodes[i].url()
	}
	rt, err := New(Options{
		Peers:          peers,
		HealthInterval: 50 * time.Millisecond,
		Backoff:        10 * time.Millisecond,
		Logger:         quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)

	resp, b := postRun(t, rsrv.Client(), rsrv.URL, `{"l":50,"w":20,"seed":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d (%s), want the backend's 400 passed through", resp.StatusCode, b)
	}
	if !strings.Contains(b, "exceeds the limit") {
		t.Fatalf("body %q lacks the backend's error detail", b)
	}
	// Router-side validation still rejects malformed requests itself.
	resp, b = postRun(t, rsrv.Client(), rsrv.URL, `{"bogus":1}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(b, "invalid JSON body") {
		t.Fatalf("router validation: status %d body %q", resp.StatusCode, b)
	}
	if got := rt.Metrics.Requests["run"].Value(); got != 2 {
		t.Fatalf("router counted %d run requests, want 2", got)
	}
}

// TestClusterMetricsText lints the router's Prometheus exposition: every
// family announced with HELP/TYPE, counters suffixed _total, per-peer
// labels present, and the output stable across scrapes.
func TestClusterMetricsText(t *testing.T) {
	rt, rsrv, _ := startFleet(t, 3, false, Options{})
	if _, b := postRun(t, rsrv.Client(), rsrv.URL, `{"l":20,"w":8,"seed":5}`); b == "" {
		t.Fatal("empty run response")
	}
	get := func() string {
		resp, err := rsrv.Client().Get(rsrv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	text := get()
	for _, want := range []string{
		"# TYPE hexd_cluster_requests_total counter",
		`hexd_cluster_requests_total{endpoint="run"} 1`,
		"# TYPE hexd_cluster_forwards_total counter",
		"# TYPE hexd_cluster_rehomes_total counter",
		"# TYPE hexd_cluster_peer_up gauge",
		fmt.Sprintf("hexd_cluster_peer_up{peer=%q} 1", rt.Peers()[0]),
		"# TYPE hexd_cluster_local_hits_total counter",
		"# TYPE hexd_cluster_health_checks_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text lacks %q", want)
		}
	}
	// Family and label order must not drift between scrapes.
	if again := get(); func() bool {
		a, b := strings.Split(text, "\n"), strings.Split(again, "\n")
		if len(a) != len(b) {
			return true
		}
		for i := range a {
			ai, bi := strings.SplitN(a[i], " ", 2)[0], strings.SplitN(b[i], " ", 2)[0]
			if ai != bi {
				return true
			}
		}
		return false
	}() {
		t.Error("metric family/label order drifted between scrapes")
	}
}
