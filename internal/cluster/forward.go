package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/coalesce"
	"repro/internal/obs"
)

// backendError carries a backend's non-2xx answer through the coalescer
// so the router replays it verbatim (status, content type, body) to
// every waiter. It is an error — the coalescer caches only successes —
// but not a router failure: 400s and 429s belong to the backend that
// issued them.
type backendError struct {
	status      int
	contentType string
	body        []byte
}

func (e *backendError) Error() string {
	return fmt.Sprintf("backend answered %d: %s", e.status, bytes.TrimSpace(e.body))
}

// maxForwardResponse bounds a backend response body (64 MiB — far above
// the largest SVG/CSV a MaxNodes-sized grid renders).
const maxForwardResponse = 64 << 20

// forward sends the request to the canonical key's owning peer, with
// retry-with-backoff and deterministic re-homing: each attempt goes to
// the highest-rendezvous-ranked peer that is up and has not failed this
// request yet, so losing the owner falls back to the key's second-ranked
// peer (and so on), identically on every router. Transport failures and
// 503 (a draining backend) count against the peer's health and trigger
// the next attempt; any other backend answer — success or client error —
// is final.
func (r *Router) forward(ctx context.Context, path, key string, body []byte, rid, traceparent string) (*coalesce.Value, error) {
	tr := obs.FromContext(ctx)
	ranked := Rank(key, r.peerURLs)
	owner := ranked[0]
	tried := make([]bool, len(r.peerURLs))
	var lastErr error
	for attempt := 0; attempt < r.opts.Retries; attempt++ {
		if attempt > 0 {
			// Exponential backoff between attempts, cut short by the
			// flight's deadline.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(r.opts.Backoff << (attempt - 1)):
			}
		}
		peer := r.pickPeer(ranked, tried)
		if peer < 0 {
			break // every peer tried this request
		}
		tried[peer] = true
		val, final, err := r.attempt(ctx, peer, path, body, rid, traceparent)
		if err == nil {
			if peer != owner {
				r.Metrics.Rehomes.Inc()
				tr.Note("rehomed")
			}
			return val, nil
		}
		if final {
			return nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no reachable peer for key %s", key)
	}
	return nil, lastErr
}

// pickPeer returns the highest-ranked untried peer, preferring up peers:
// a down peer is only attempted once every up peer has been tried (the
// health view may be stale — a "down" peer is still worth a last shot
// before failing the request).
func (r *Router) pickPeer(ranked []int, tried []bool) int {
	for _, i := range ranked {
		if !tried[i] && r.peers.isUp(i) {
			return i
		}
	}
	for _, i := range ranked {
		if !tried[i] {
			return i
		}
	}
	return -1
}

// attempt performs one forward to one peer. final reports that the
// answer (success or error) must not trigger another attempt.
func (r *Router) attempt(ctx context.Context, peer int, path string, body []byte, rid, traceparent string) (val *coalesce.Value, final bool, err error) {
	base := r.peerURLs[peer]
	tr := obs.FromContext(ctx)
	endSpan := tr.StartSpan("forward " + base)
	defer endSpan()
	r.Metrics.Forwards[peer].Inc()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, true, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", rid)
	req.Header.Set(obs.TraceparentHeader, traceparent)
	resp, err := r.client.Do(req)
	if err != nil {
		r.Metrics.ForwardErrors[peer].Inc()
		r.peers.reportFailure(peer)
		tr.Note("forward-error " + base)
		return nil, false, fmt.Errorf("forward to %s: %w", base, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardResponse+1))
	if err != nil {
		r.Metrics.ForwardErrors[peer].Inc()
		r.peers.reportFailure(peer)
		return nil, false, fmt.Errorf("reading %s response: %w", base, err)
	}
	if len(data) > maxForwardResponse {
		return nil, true, fmt.Errorf("%s response exceeds %d bytes", base, maxForwardResponse)
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		r.peers.reportSuccess(peer)
		events, _ := strconv.ParseUint(resp.Header.Get("X-Hexd-Events"), 10, 64)
		tr.Note("served-by " + base)
		return &coalesce.Value{
			Body:        data,
			ContentType: resp.Header.Get("Content-Type"),
			Events:      events,
		}, false, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		// The backend is draining (or refusing work): health-relevant
		// and retryable on the next-ranked peer.
		r.Metrics.ForwardErrors[peer].Inc()
		r.peers.reportFailure(peer)
		tr.Note("peer-draining " + base)
		return nil, false, fmt.Errorf("%s is unavailable", base)
	default:
		// Any other status is the backend's deliberate verdict on this
		// request (400 invalid, 429 shed, 500, 504 deadline): pass it
		// through rather than re-homing — re-homing a 429 would defeat
		// the shard's load shedding by duplicating its work elsewhere.
		return nil, true, &backendError{
			status:      resp.StatusCode,
			contentType: resp.Header.Get("Content-Type"),
			body:        data,
		}
	}
}
