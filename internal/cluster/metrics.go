package cluster

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/service"
)

// Metrics is the router's metric registry, exposed on the router's
// /metrics in the same Prometheus text format as the backend registry
// (service.Metrics); the hexd_cluster_* prefix keeps one fleet-wide
// scrape config working for both roles. All fields are safe for
// concurrent use.
type Metrics struct {
	// Requests counts router HTTP requests per endpoint.
	Requests map[string]*service.Counter
	// LocalHits counts requests answered from the router's own LRU;
	// Coalesced counts requests that joined an in-flight forward. Both
	// never left the router — the fleet-wide dedup at work.
	LocalHits, Coalesced *service.Counter
	// Forwards and ForwardErrors count router→backend hops per peer
	// (errors are transport failures and 5xx re-home triggers, not
	// pass-through client errors).
	Forwards, ForwardErrors []*service.Counter
	// Rehomes counts forwards served by a peer other than the key's
	// first-ranked owner — the observable face of rendezvous fallback.
	Rehomes *service.Counter
	// Busy counts requests shed with 429 because the forward semaphore
	// was full.
	Busy *service.Counter
	// HealthChecks and HealthFailures count liveness probes per peer;
	// Transitions counts up↔down state changes per peer.
	HealthChecks, HealthFailures, Transitions []*service.Counter
	// PeerUp is each peer's current state (1 up, 0 down).
	PeerUp []*service.Gauge

	peers     []string
	endpoints []string

	extraMu sync.Mutex
	extra   []func(io.Writer)
}

// AddExtra registers an auxiliary metric writer appended after the
// router families on every scrape — the same hook service.Metrics offers,
// so a router-hosted jobs manager exposes its sweep families here too.
func (m *Metrics) AddExtra(f func(io.Writer)) {
	m.extraMu.Lock()
	defer m.extraMu.Unlock()
	m.extra = append(m.extra, f)
}

// NewMetrics returns an empty registry for the given peers and endpoint
// labels.
func NewMetrics(peers []string, endpoints ...string) *Metrics {
	m := &Metrics{
		Requests:  make(map[string]*service.Counter, len(endpoints)),
		LocalHits: &service.Counter{},
		Coalesced: &service.Counter{},
		Rehomes:   &service.Counter{},
		Busy:      &service.Counter{},
		peers:     append([]string(nil), peers...),
		endpoints: append([]string(nil), endpoints...),
	}
	for _, ep := range m.endpoints {
		m.Requests[ep] = &service.Counter{}
	}
	for range peers {
		m.Forwards = append(m.Forwards, &service.Counter{})
		m.ForwardErrors = append(m.ForwardErrors, &service.Counter{})
		m.HealthChecks = append(m.HealthChecks, &service.Counter{})
		m.HealthFailures = append(m.HealthFailures, &service.Counter{})
		m.Transitions = append(m.Transitions, &service.Counter{})
		m.PeerUp = append(m.PeerUp, &service.Gauge{})
		m.PeerUp[len(m.PeerUp)-1].Set(1)
	}
	return m
}

// WriteText renders the registry in the Prometheus text exposition
// format, mirroring service.Metrics.WriteText: stable family and label
// order across scrapes, # HELP/# TYPE headers, counters suffixed _total.
func (m *Metrics) WriteText(w io.Writer) {
	header := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	perPeer := func(name, typ, help string, v func(i int) int64) {
		header(name, typ, help)
		for i, p := range m.peers {
			fmt.Fprintf(w, "%s{peer=%q} %d\n", name, p, v(i))
		}
	}
	header("hexd_cluster_requests_total", "counter", "Router HTTP requests, by endpoint.")
	for _, ep := range m.endpoints {
		fmt.Fprintf(w, "hexd_cluster_requests_total{endpoint=%q} %d\n", ep, m.Requests[ep].Value())
	}
	header("hexd_cluster_local_hits_total", "counter", "Requests answered from the router's own cache.")
	fmt.Fprintf(w, "hexd_cluster_local_hits_total %d\n", m.LocalHits.Value())
	header("hexd_cluster_coalesced_total", "counter", "Requests coalesced onto an in-flight forward.")
	fmt.Fprintf(w, "hexd_cluster_coalesced_total %d\n", m.Coalesced.Value())
	header("hexd_cluster_rehomes_total", "counter", "Forwards served by a fallback peer instead of the key's owner.")
	fmt.Fprintf(w, "hexd_cluster_rehomes_total %d\n", m.Rehomes.Value())
	header("hexd_cluster_busy_total", "counter", "Requests shed because the forward concurrency limit was reached.")
	fmt.Fprintf(w, "hexd_cluster_busy_total %d\n", m.Busy.Value())
	perPeer("hexd_cluster_forwards_total", "counter", "Router-to-backend forwards, by peer.",
		func(i int) int64 { return int64(m.Forwards[i].Value()) })
	perPeer("hexd_cluster_forward_errors_total", "counter", "Failed forwards (transport errors, 5xx re-homes), by peer.",
		func(i int) int64 { return int64(m.ForwardErrors[i].Value()) })
	perPeer("hexd_cluster_health_checks_total", "counter", "Health probes sent, by peer.",
		func(i int) int64 { return int64(m.HealthChecks[i].Value()) })
	perPeer("hexd_cluster_health_failures_total", "counter", "Health probes failed, by peer.",
		func(i int) int64 { return int64(m.HealthFailures[i].Value()) })
	perPeer("hexd_cluster_peer_transitions_total", "counter", "Peer up/down state changes, by peer.",
		func(i int) int64 { return int64(m.Transitions[i].Value()) })
	perPeer("hexd_cluster_peer_up", "gauge", "Peer health (1 up, 0 down), by peer.",
		func(i int) int64 { return m.PeerUp[i].Value() })
	m.extraMu.Lock()
	extra := make([]func(io.Writer), len(m.extra))
	copy(extra, m.extra)
	m.extraMu.Unlock()
	for _, f := range extra {
		f(w)
	}
}
