package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// PeerStatus is one peer's view in the router's health report.
type PeerStatus struct {
	URL string `json:"url"`
	Up  bool   `json:"up"`
	// Fails is the current consecutive-failure count (0 for a healthy
	// peer); it crosses the router's threshold to take the peer down.
	Fails int `json:"fails,omitempty"`
}

// peerSet tracks the up/down state of the static peer list. A peer goes
// down after failThreshold consecutive probe or forward failures and
// comes back on the first successful health probe. All methods are safe
// for concurrent use.
type peerSet struct {
	urls          []string
	failThreshold int

	mu    sync.Mutex
	up    []bool
	fails []int

	onTransition func(i int, up bool) // metrics tap; called outside mu
}

func newPeerSet(urls []string, failThreshold int) *peerSet {
	ps := &peerSet{
		urls:          urls,
		failThreshold: failThreshold,
		up:            make([]bool, len(urls)),
		fails:         make([]int, len(urls)),
	}
	// Start optimistic: every peer is assumed up until a probe or a
	// forward says otherwise, so a router boots serving immediately.
	for i := range ps.up {
		ps.up[i] = true
	}
	return ps
}

// reportSuccess marks peer i healthy.
func (ps *peerSet) reportSuccess(i int) {
	ps.mu.Lock()
	ps.fails[i] = 0
	wasDown := !ps.up[i]
	ps.up[i] = true
	ps.mu.Unlock()
	if wasDown && ps.onTransition != nil {
		ps.onTransition(i, true)
	}
}

// reportFailure counts one failed probe or forward against peer i,
// taking it down at the threshold.
func (ps *peerSet) reportFailure(i int) {
	ps.mu.Lock()
	ps.fails[i]++
	goesDown := ps.up[i] && ps.fails[i] >= ps.failThreshold
	if goesDown {
		ps.up[i] = false
	}
	ps.mu.Unlock()
	if goesDown && ps.onTransition != nil {
		ps.onTransition(i, false)
	}
}

// isUp reports peer i's current state.
func (ps *peerSet) isUp(i int) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.up[i]
}

// status snapshots every peer's state.
func (ps *peerSet) status() []PeerStatus {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]PeerStatus, len(ps.urls))
	for i, u := range ps.urls {
		out[i] = PeerStatus{URL: u, Up: ps.up[i], Fails: ps.fails[i]}
	}
	return out
}

// downCount returns how many peers are currently down.
func (ps *peerSet) downCount() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, u := range ps.up {
		if !u {
			n++
		}
	}
	return n
}

// healthLoop probes every peer's /healthz each interval until stop is
// closed. It runs on the router's goroutine budget: one goroutine total,
// probing peers sequentially — fleets are small (units to tens of
// nodes) and a hung peer is bounded by the probe timeout.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

// probeAll health-checks every peer once.
func (r *Router) probeAll() {
	for i, u := range r.peerURLs {
		r.Metrics.HealthChecks[i].Inc()
		if r.probe(u) {
			r.peers.reportSuccess(i)
		} else {
			r.Metrics.HealthFailures[i].Inc()
			r.peers.reportFailure(i)
		}
	}
}

// probe performs one GET /healthz against a peer base URL. Any non-200
// answer is a failure: a draining backend answers 503 and must stop
// receiving forwards before its workers exit.
func (r *Router) probe(base string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
