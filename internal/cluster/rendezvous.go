// Package cluster turns hexd into a sharded fleet: a router node that
// rendezvous-hashes canonical request keys across N backend nodes, so
// the result cache, in-flight dedup, and durable store shard
// horizontally instead of duplicating work per node.
//
// The router reuses the service layer's canonicalization (the same
// Normalize + CanonicalKey that key the backend LRU and the disk store)
// and the shared internal/coalesce singleflight, so identical concurrent
// requests arriving anywhere coalesce fleet-wide: the router collapses
// them into one forward, and the owning backend collapses concurrent
// forwards from multiple routers into one simulation.
//
// Placement is rendezvous (highest-random-weight) hashing: every
// (key, peer) pair gets a deterministic weight and the key is owned by
// the highest-weighted live peer. Unlike ring-based consistent hashing,
// losing a node re-homes exactly that node's keys — each one to its
// second-ranked peer — and every router computes the same answer with no
// coordination. Health is tracked by periodic /healthz probes plus
// passive marking on forward failures; a recovered node takes its keys
// back on the next health tick, and because results are deterministic
// functions of the canonical key, ownership flapping can waste work but
// never serve wrong bytes.
package cluster

import (
	"hash/fnv"
	"sort"
)

// weight computes the rendezvous weight of peer for key: a deterministic
// 64-bit hash of the (peer, key) pair. The hash is content-defined (no
// process-local seed), which is what makes every router in the fleet
// agree on placement with no coordination. Raw FNV-1a correlates across
// near-identical peer URLs ("http://n1:8081" vs "http://n2:8081" skewed
// ownership by ~2× in testing), so the combined hash is passed through a
// murmur3 finalizer for avalanche.
func weight(peer, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer: a bijective scramble giving
// full avalanche, so one-character peer differences decorrelate.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Rank returns the indices of peers ordered by descending rendezvous
// weight for key: Rank(...)[0] is the key's owner, Rank(...)[1] the
// first fallback, and so on. Ties (astronomically unlikely with 64-bit
// weights) break toward the lower index so the order is total and
// deterministic.
func Rank(key string, peers []string) []int {
	idx := make([]int, len(peers))
	w := make([]uint64, len(peers))
	for i, p := range peers {
		idx[i] = i
		w[i] = weight(p, key)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if w[ia] != w[ib] {
			return w[ia] > w[ib]
		}
		return ia < ib
	})
	return idx
}
