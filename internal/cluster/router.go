package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/coalesce"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/service"
)

// ErrBusy is returned when the router's forward concurrency limit is
// reached; the HTTP layer sheds the request with 429.
var ErrBusy = errors.New("cluster: too many forwards in flight")

// maxBodyBytes bounds accepted request bodies (mirrors the backend).
const maxBodyBytes = 1 << 20

// Options configure a Router. Peers is required; the zero value of every
// other field selects a sane default.
type Options struct {
	// Peers is the static list of backend base URLs
	// ("http://host:port", no trailing slash). Placement is a pure
	// function of (canonical key, Peers), so every router given the
	// same list routes identically.
	Peers []string
	// Service carries the admission limits (MaxNodes, MaxRuns, deadline
	// clamps) the router enforces before forwarding — a request the
	// fleet would reject is refused at the door. Worker/queue/store
	// fields are ignored: the router executes nothing locally.
	Service service.Options
	// HealthInterval is the period of the /healthz probe loop
	// (default 2s); HealthTimeout bounds one probe (default 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// FailThreshold is the number of consecutive probe or forward
	// failures that take a peer down (default 2). A single successful
	// probe brings it back.
	FailThreshold int
	// Retries is the total number of forward attempts per request
	// across owner and fallback (default 3); Backoff is the sleep
	// before the second attempt, doubling per attempt (default 50ms).
	Retries int
	Backoff time.Duration
	// MaxForwards bounds concurrently in-flight forwards (default 256);
	// beyond it, requests are shed with 429.
	MaxForwards int
	// CacheEntries bounds the router's own result LRU (default 0 =
	// disabled). The fleet's caches live on the backends — keyed
	// identically — so router-side caching is an optional latency
	// shortcut for hot keys, not the source of truth.
	CacheEntries int
	// TraceRing bounds the router's GET /v1/debug/requests ring
	// (default 64; negative disables).
	TraceRing int
	// Logger receives the router's structured request log (default
	// slog.Default()).
	Logger *slog.Logger
	// Exporter, when non-nil, receives every completed router trace for
	// OTLP export; a nil exporter is a valid no-op. Router spans parent
	// the backend spans they cause (the forwarded traceparent carries the
	// router trace's span-id), so the collector renders one stitched tree
	// per fleet request.
	Exporter *export.Exporter
	// Client issues forwards and health probes (default: a dedicated
	// transport with per-peer connection pooling).
	Client *http.Client
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	o.Service = o.Service.Resolved()
	if o.HealthInterval <= 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxForwards <= 0 {
		o.MaxForwards = 256
	}
	if o.TraceRing == 0 {
		o.TraceRing = 64
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return o
}

// Router fronts a fleet of hexd backends: it canonicalizes requests with
// the same code the backends use, coalesces identical concurrent
// requests into one forward, and rendezvous-routes each canonical key to
// its owning (or, on node loss, fallback) backend. Construct with New;
// all methods are safe for concurrent use.
type Router struct {
	opts     Options
	peerURLs []string
	peers    *peerSet
	coal     *coalesce.Coalescer
	Metrics  *Metrics
	ring     *obs.Ring
	client   *http.Client
	sem      chan struct{}

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a Router and its health-probe loop.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Peers) == 0 {
		return nil, errors.New("cluster: at least one peer is required")
	}
	urls := make([]string, len(opts.Peers))
	seen := make(map[string]bool, len(opts.Peers))
	for i, p := range opts.Peers {
		u := strings.TrimRight(strings.TrimSpace(p), "/")
		if u == "" || (!strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://")) {
			return nil, fmt.Errorf("cluster: peer %q is not an http(s) base URL", p)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", u)
		}
		seen[u] = true
		urls[i] = u
	}
	r := &Router{
		opts:     opts,
		peerURLs: urls,
		Metrics:  NewMetrics(urls, "run", "spec"),
		ring:     obs.NewRing(opts.TraceRing),
		client:   opts.Client,
		sem:      make(chan struct{}, opts.MaxForwards),
		stop:     make(chan struct{}),
	}
	r.peers = newPeerSet(urls, opts.FailThreshold)
	r.peers.onTransition = func(i int, up bool) {
		r.Metrics.Transitions[i].Inc()
		if up {
			r.Metrics.PeerUp[i].Set(1)
			r.opts.Logger.Info("peer up", "peer", urls[i])
		} else {
			r.Metrics.PeerUp[i].Set(0)
			r.opts.Logger.Warn("peer down", "peer", urls[i])
		}
	}
	r.coal = coalesce.New(opts.CacheEntries, coalesce.Hooks{
		Submit: r.submit,
		OnHit:  r.Metrics.LocalHits.Inc,
		OnJoin: r.Metrics.Coalesced.Inc,
	})
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// submit is the coalescer's executor hook on the router: each flight is
// one forwarding goroutine, bounded by the MaxForwards semaphore. Called
// with the coalescer's lock held, so the try-acquire must not block.
func (r *Router) submit(run func()) error {
	select {
	case r.sem <- struct{}{}:
	default:
		r.Metrics.Busy.Inc()
		return ErrBusy
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer func() { <-r.sem }()
		run()
	}()
	return nil
}

// Peers returns the router's peer list in configuration order.
func (r *Router) Peers() []string { return append([]string(nil), r.peerURLs...) }

// Ring returns the router's completed-request trace ring, so auxiliary
// request sources (the sweep-jobs manager) can land their traces next to
// proxied requests in GET /v1/debug/requests.
func (r *Router) Ring() *obs.Ring { return r.ring }

// Close stops the health loop, refuses new flights, and waits for
// in-flight forwards to finish. Idempotent is not required of it — the
// daemon calls it exactly once at drain.
func (r *Router) Close() {
	r.coal.Close()
	close(r.stop)
	r.wg.Wait()
}

// Handler returns the router's HTTP API — the same surface a single
// backend serves, so clients need not know whether they talk to one node
// or a fleet:
//
//	POST /v1/run            — canonicalize, coalesce, forward to the owning shard
//	POST /v1/spec           — likewise
//	GET  /v1/debug/requests — ring of recently completed router traces
//	GET  /healthz           — fleet health: ok / degraded (some peers down) / 503 (none up or draining)
//	GET  /metrics           — hexd_cluster_* Prometheus metrics
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, req *http.Request) { r.handleProxy(w, req, "run") })
	mux.HandleFunc("/v1/spec", func(w http.ResponseWriter, req *http.Request) { r.handleProxy(w, req, "spec") })
	mux.HandleFunc("/v1/debug/requests", r.handleDebugRequests)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/metrics", r.handleMetrics)
	return mux
}

// errorResponse mirrors the backend's error body shape.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSONError(w http.ResponseWriter, code int, msg, rid string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg, RequestID: rid})
}

// handleProxy runs the router pipeline for one endpoint: canonicalize →
// coalesce fleet-wide → forward to the owning shard → replay.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request, endpoint string) {
	r.Metrics.Requests[endpoint].Inc()
	start := time.Now()
	rid := obs.RequestID(req.Header.Get("X-Request-ID"))
	w.Header().Set("X-Request-ID", rid)
	if req.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only", rid)
		return
	}
	// Propagate (or mint) the W3C trace-id: every backend hop of this
	// request carries it, so /v1/debug/requests correlates fleet-wide. An
	// incoming parent span-id (a tracing-aware client, or another router
	// tier) parents this router's own span.
	traceID, parentID, ok := obs.ParseTraceparent(req.Header.Get(obs.TraceparentHeader))
	if !ok {
		traceID = obs.NewTraceID()
	}
	tr := obs.NewTrace(rid, endpoint)
	tr.SetTraceID(traceID)
	tr.SetParentSpanID(parentID)

	req.Body = http.MaxBytesReader(w, req.Body, maxBodyBytes)
	raw, err := io.ReadAll(req.Body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "reading body: "+err.Error(), rid)
		return
	}
	// Canonicalize with the backends' own code so the router shards on
	// exactly the key the backend will cache and store under. The
	// original bytes are what gets forwarded — the backend re-derives
	// the same key from them.
	key, timeoutMs, err := canonicalize(endpoint, raw, r.opts.Service)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), rid)
		return
	}
	timeout := service.RequestTimeout(timeoutMs, r.opts.Service)
	ctx, cancel := context.WithTimeout(req.Context(), timeout)
	defer cancel()
	ctx = obs.WithTrace(ctx, tr)

	path := req.URL.Path
	if q := req.URL.RawQuery; q != "" {
		path += "?" + q
	}
	// The forwarded traceparent names THIS trace's span as the parent, so
	// the backend's span nests under the router hop in the exported tree.
	tp := obs.FormatTraceparent(traceID, tr.SpanID())
	val, err := r.coal.Do(ctx, timeout, key, func(fctx context.Context) (*coalesce.Value, error) {
		return r.forward(fctx, path, key, raw, rid, tp)
	})
	status := http.StatusOK
	if err != nil {
		status = r.writeError(w, rid, err)
	} else {
		w.Header().Set("Content-Type", val.ContentType)
		w.Header().Set("X-Hexd-Events", fmt.Sprintf("%d", val.Events))
		w.Write(val.Body)
	}
	tr.Finish(status, err)
	r.ring.Add(tr)
	r.opts.Exporter.Export(tr)
	r.logRequest(endpoint, rid, status, time.Since(start), err)
}

// canonicalize derives the canonical key and requested deadline from a
// raw request body using the service layer's normalization.
func canonicalize(endpoint string, raw []byte, sopts service.Options) (key string, timeoutMs int64, err error) {
	switch endpoint {
	case "run":
		var rr service.RunRequest
		if err := decodeStrict(raw, &rr); err != nil {
			return "", 0, err
		}
		if err := rr.Normalize(sopts); err != nil {
			return "", 0, err
		}
		return rr.CanonicalKey(), rr.TimeoutMs, nil
	case "spec":
		var sr service.SpecRequest
		if err := decodeStrict(raw, &sr); err != nil {
			return "", 0, err
		}
		if err := sr.Normalize(sopts); err != nil {
			return "", 0, err
		}
		return sr.CanonicalKey(), sr.TimeoutMs, nil
	}
	return "", 0, fmt.Errorf("unknown endpoint %q", endpoint)
}

// decodeStrict parses JSON the same way the backend does: unknown fields
// are errors, so a typo fails fast at the router instead of computing
// the wrong simulation on a shard.
func decodeStrict(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// writeError maps pipeline errors to HTTP statuses. Backend non-2xx
// answers pass through with their original status and body.
func (r *Router) writeError(w http.ResponseWriter, rid string, err error) int {
	var be *backendError
	switch {
	case errors.As(err, &be):
		w.Header().Set("Content-Type", be.contentType)
		w.WriteHeader(be.status)
		w.Write(be.body)
		return be.status
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "router busy; retry later", rid)
		return http.StatusTooManyRequests
	case errors.Is(err, coalesce.ErrShuttingDown):
		writeJSONError(w, http.StatusServiceUnavailable, "shutting down", rid)
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		writeJSONError(w, http.StatusGatewayTimeout, "deadline exceeded", rid)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		writeJSONError(w, http.StatusGatewayTimeout, "request cancelled", rid)
		return http.StatusGatewayTimeout
	default:
		writeJSONError(w, http.StatusBadGateway, err.Error(), rid)
		return http.StatusBadGateway
	}
}

// logRequest mirrors the backend's structured request log line.
func (r *Router) logRequest(endpoint, rid string, status int, d time.Duration, err error) {
	args := []any{
		"request_id", rid,
		"endpoint", endpoint,
		"status", status,
		"dur_ms", float64(d) / float64(time.Millisecond),
	}
	if err != nil {
		args = append(args, "err", err.Error())
	}
	if status >= 400 {
		r.opts.Logger.Warn("router request failed", args...)
		return
	}
	r.opts.Logger.Debug("router request served", args...)
}

// handleDebugRequests serves the router's ring of completed traces.
func (r *Router) handleDebugRequests(w http.ResponseWriter, req *http.Request) {
	rid := obs.RequestID(req.Header.Get("X-Request-ID"))
	w.Header().Set("X-Request-ID", rid)
	if req.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "GET only", rid)
		return
	}
	snaps := r.ring.Snapshots()
	if snaps == nil {
		snaps = []obs.TraceSnapshot{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snaps)
}

// healthzResponse is the router's /healthz body.
type healthzResponse struct {
	// Status is "ok" (all peers up), "degraded" (some peers down — the
	// fleet still serves, with down peers' keys re-homed), or
	// "unavailable" (no peer up, or draining).
	Status string       `json:"status"`
	Peers  []PeerStatus `json:"peers"`
}

// handleHealthz reports fleet health honestly instead of a flat 200: a
// router whose peer set has down members answers "degraded" with the
// per-peer detail, and a router that can reach no backend at all (or is
// draining) answers 503 so load balancers stop sending it traffic.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if r.coal.Closed() {
		writeJSONError(w, http.StatusServiceUnavailable, "draining", "")
		return
	}
	resp := healthzResponse{Status: "ok", Peers: r.peers.status()}
	code := http.StatusOK
	switch down := r.peers.downCount(); {
	case down == len(r.peerURLs):
		resp.Status = "unavailable"
		code = http.StatusServiceUnavailable
	case down > 0:
		resp.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.Metrics.WriteText(w)
}
