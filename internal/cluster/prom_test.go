package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs/export"
	"repro/internal/promlint"
	"repro/internal/service"
)

// TestRouterMetricsPrometheusLint scrapes the router's /metrics page —
// which aggregates the hexd_cluster_* families with the appended
// hexd_sweep_* (jobs manager) and hexd_otlp_* (exporter) families — and
// holds it to the same exposition-format bar as the backend page.
func TestRouterMetricsPrometheusLint(t *testing.T) {
	col := &otlpCollector{}
	colSrv := httptest.NewServer(col.handler())
	defer colSrv.Close()
	exp := export.New(export.Options{Endpoint: colSrv.URL, FlushInterval: 20 * time.Millisecond})
	defer exp.Close(context.Background())

	_, _, srv := sweepFleet(t, 2, service.Options{Exporter: exp}, exp)

	// Real traffic on both planes so the families carry values: one
	// interactive run through the proxy, one sweep through the manager.
	resp, body := postRun(t, srv.Client(), srv.URL, `{"l":10,"w":6,"seed":9}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d (%s)", resp.StatusCode, body)
	}
	id := submitSweepJSON(t, srv.URL, `{"l":10,"w":6,"scenarios":["iii"],"seed_count":2}`)
	waitSweepDone(t, srv.URL, id)

	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	types, samples := promlint.Lint(t, string(raw))
	promlint.RequireFamilies(t, types, map[string]string{
		"hexd_cluster_requests_total":     "counter",
		"hexd_cluster_forwards_total":     "counter",
		"hexd_cluster_peer_up":            "gauge",
		"hexd_sweep_jobs_submitted_total": "counter",
		"hexd_sweep_units_done_total":     "counter",
		"hexd_sweep_units_inflight":       "gauge",
		"hexd_otlp_exported_total":        "counter",
		"hexd_otlp_dropped_total":         "counter",
		"hexd_otlp_retries_total":         "counter",
		"hexd_otlp_queue_depth":           "gauge",
	})

	// The traffic above must be visible: forwards happened, units
	// completed, and (after a flush) spans were exported.
	value := func(name string) float64 {
		var total float64
		for _, s := range samples {
			if s.Name == name {
				total += s.Value
			}
		}
		return total
	}
	if value("hexd_cluster_forwards_total") == 0 {
		t.Error("no forwards counted after routed traffic")
	}
	if value("hexd_sweep_units_done_total") != 2 {
		t.Errorf("hexd_sweep_units_done_total = %v, want 2", value("hexd_sweep_units_done_total"))
	}
}
