package cluster

import (
	"context"
	"encoding/json"
	"time"

	"repro/internal/coalesce"
	"repro/internal/obs"
	"repro/internal/service"
)

// RunUnit executes one normalized single-run request through the full
// router pipeline — fleet-wide coalescing, rendezvous routing to the
// key's owning shard, retry with deterministic re-homing — exactly as if
// its JSON had arrived as its own POST /v1/run. It exists for the jobs
// layer (it satisfies jobs.Runner structurally, without this package
// importing jobs): a sweep submitted to a router fans its units out
// across the fleet by key ownership, and each unit still dedupes against
// interactive traffic and other sweeps touching the same key.
func (r *Router) RunUnit(ctx context.Context, timeout time.Duration, req service.RunRequest) (*coalesce.Value, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	key := req.CanonicalKey()
	tr := obs.FromContext(ctx)
	rid := tr.ID()
	if rid == "" {
		rid = obs.NewRequestID()
	}
	traceID := tr.TraceID()
	if traceID == "" {
		traceID = obs.NewTraceID()
		tr.SetTraceID(traceID)
	}
	r.Metrics.Requests["run"].Inc()
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	// The caller's trace (a sweep unit's) is the parent of the backend
	// span this forward causes, stitching job → unit → backend run.
	tp := obs.FormatTraceparent(traceID, tr.SpanID())
	return r.coal.Do(ctx, timeout, key, func(fctx context.Context) (*coalesce.Value, error) {
		return r.forward(fctx, "/v1/run", key, raw, rid, tp)
	})
}
