package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/service"
)

// otlpCollector is an in-process fake OTLP collector: it decodes every
// /v1/traces POST into export's wire types and keeps the spans.
type otlpCollector struct {
	mu    sync.Mutex
	spans []export.Span
}

func (c *otlpCollector) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var p export.Payload
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.mu.Lock()
		for _, rs := range p.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				c.spans = append(c.spans, ss.Spans...)
			}
		}
		c.mu.Unlock()
	})
}

func (c *otlpCollector) all() []export.Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]export.Span(nil), c.spans...)
}

func (c *otlpCollector) named(name string) []export.Span {
	var out []export.Span
	for _, s := range c.all() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func spanAttr(s export.Span, key string) (export.AnyValue, bool) {
	for _, kv := range s.Attributes {
		if kv.Key == key {
			return kv.Value, true
		}
	}
	return export.AnyValue{}, false
}

// sweepFleet boots backends and a router that all share one OTLP
// exporter (as an in-process stand-in for per-process exporters pointed
// at the same collector), plus a jobs manager fronting the router, wired
// the way cmd/hexd wires -router mode.
func sweepFleet(t *testing.T, backends int, svcOpts service.Options, exp *export.Exporter) (*Router, *jobs.Manager, *httptest.Server) {
	t.Helper()
	peers := make([]string, backends)
	for i := range peers {
		n := startNode(t, "", "", svcOpts)
		peers[i] = n.url()
	}
	rt, err := New(Options{
		Peers:          peers,
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		FailThreshold:  1,
		Backoff:        10 * time.Millisecond,
		Logger:         quietLogger(),
		Exporter:       exp,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	mgr := jobs.NewManager(jobs.Options{
		Runner:   rt,
		Service:  service.Options{},
		Logger:   quietLogger(),
		Trace:    rt.Ring(),
		Exporter: exp,
	})
	t.Cleanup(mgr.Close)
	rt.Metrics.AddExtra(mgr.Metrics.WriteText)
	rt.Metrics.AddExtra(exp.WriteMetrics)
	mux := http.NewServeMux()
	mux.Handle("/", rt.Handler())
	mgr.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return rt, mgr, srv
}

// waitSweepDone polls the job status endpoint until every unit reached a
// terminal state.
func waitSweepDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Units, Done, Failed, Cancelled int
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Units > 0 && st.Done+st.Failed+st.Cancelled == st.Units {
			if st.Failed+st.Cancelled > 0 {
				t.Fatalf("sweep not clean: %+v", st)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("sweep did not finish in time")
}

// TestFleetStitchedTraceAndArmRerun is the acceptance test for the OTLP
// tentpole: a sweep submitted to a 2-backend fleet's router must export
// one trace tree — sweep-job root → per-unit spans (router side) →
// backend request spans (owner side) with correct traceparent parentage
// — and, with a skew policy whose margin forces every run out of the
// envelope, each backend run must be auto-re-run with the flight
// recorder armed and the dump attached to its exported span.
func TestFleetStitchedTraceAndArmRerun(t *testing.T) {
	col := &otlpCollector{}
	colSrv := httptest.NewServer(col.handler())
	defer colSrv.Close()
	exp := export.New(export.Options{
		Endpoint:      colSrv.URL,
		BatchSize:     4,
		FlushInterval: 20 * time.Millisecond,
	})
	defer exp.Close(context.Background())

	// SkewMarginPct -100 inverts the Theorem-1 envelope: every measured
	// run violates it, so every unit must trigger an armed re-run.
	svcOpts := service.Options{
		Exporter: exp,
		Arm:      obs.NewArmer(obs.ArmPolicy{OnSkew: true, SkewMarginPct: -100}),
	}
	_, _, srv := sweepFleet(t, 2, svcOpts, exp)

	const units = 3
	sub := submitSweepJSON(t, srv.URL, fmt.Sprintf(
		`{"l":10,"w":6,"scenarios":["iii"],"seed_count":%d}`, units))
	waitSweepDone(t, srv.URL, sub)

	// The root exports on job completion, unit spans per unit, backend
	// spans per forwarded run; flush and wait for all of them to land.
	deadline := time.Now().Add(10 * time.Second)
	var roots, unitSpans, backendSpans []export.Span
	for time.Now().Before(deadline) {
		if err := exp.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
		roots = col.named("sweep-job")
		unitSpans = col.named("sweep-unit")
		backendSpans = col.named("run")
		if len(roots) >= 1 && len(unitSpans) >= units && len(backendSpans) >= units {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(roots) != 1 {
		t.Fatalf("exported %d sweep-job roots, want 1", len(roots))
	}
	root := roots[0]
	if root.ParentSpanID != "" {
		t.Fatalf("job root has a parent span %q", root.ParentSpanID)
	}
	if root.Kind != export.KindServer {
		t.Fatalf("root kind = %d", root.Kind)
	}
	if v, ok := spanAttr(root, "hexd.units"); !ok || v.StringValue == nil || *v.StringValue != fmt.Sprint(units) {
		t.Fatalf("root hexd.units attr = %+v, want %d", v, units)
	}

	// Every unit span is a child of the root, in the root's trace.
	if len(unitSpans) != units {
		t.Fatalf("exported %d sweep-unit spans, want %d", len(unitSpans), units)
	}
	unitByID := make(map[string]export.Span)
	for _, u := range unitSpans {
		if u.TraceID != root.TraceID {
			t.Fatalf("unit span trace %q != root trace %q", u.TraceID, root.TraceID)
		}
		if u.ParentSpanID != root.SpanID {
			t.Fatalf("unit span parent %q != root span %q", u.ParentSpanID, root.SpanID)
		}
		unitByID[u.SpanID] = u
	}

	// Every backend request span is stitched into the same trace, under
	// the unit span whose forward caused it (the router put the unit's
	// span-id into the traceparent header).
	stitched := 0
	for _, b := range backendSpans {
		if b.TraceID != root.TraceID {
			continue // unrelated traffic (health checks export nothing, but be safe)
		}
		if _, ok := unitByID[b.ParentSpanID]; !ok {
			t.Fatalf("backend span parent %q is not a unit span", b.ParentSpanID)
		}
		stitched++

		// The arm policy fired on the owner: the run was re-run with the
		// recorder armed and the forensic dump rode out on the span.
		if v, ok := spanAttr(b, "hexd.arm"); !ok || v.StringValue == nil || !strings.Contains(*v.StringValue, "skew") {
			t.Errorf("backend span missing hexd.arm=skew attr: %+v", v)
		}
		if v, ok := spanAttr(b, "hexd.flight.captured"); !ok || v.IntValue == nil || *v.IntValue == "0" {
			t.Errorf("backend span flight dump captured no events: %+v", v)
		}
		if _, ok := spanAttr(b, "hexd.flight.dump"); !ok {
			t.Error("backend span missing hexd.flight.dump attr")
		}
	}
	if stitched != units {
		t.Fatalf("stitched %d backend spans into the job trace, want %d", stitched, units)
	}

	// The unit count with a child backend span must cover all units: no
	// orphaned hop anywhere in the tree.
	covered := make(map[string]bool)
	for _, b := range backendSpans {
		covered[b.ParentSpanID] = true
	}
	for id, u := range unitByID {
		if !covered[id] {
			t.Errorf("unit span %s (%s) has no backend child", id, u.Name)
		}
	}
}

// submitSweepJSON posts a sweep spec and returns the job id.
func submitSweepJSON(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub.ID
}

// TestProxyHopStitching covers the interactive path: a /v1/run sent to
// the router with a caller traceparent must produce a router span
// parented to the caller and a backend span parented to the router span,
// all in the caller's trace.
func TestProxyHopStitching(t *testing.T) {
	col := &otlpCollector{}
	colSrv := httptest.NewServer(col.handler())
	defer colSrv.Close()
	exp := export.New(export.Options{
		Endpoint:      colSrv.URL,
		BatchSize:     1,
		FlushInterval: 20 * time.Millisecond,
	})
	defer exp.Close(context.Background())

	_, _, srv := sweepFleet(t, 2, service.Options{Exporter: exp}, exp)

	callerTrace := obs.NewTraceID()
	callerSpan := obs.NewSpanID()
	req, err := http.NewRequest("POST", srv.URL+"/v1/run",
		strings.NewReader(`{"l":10,"w":6,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(callerTrace, callerSpan))
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	var routerSpan, backendSpan *export.Span
	for time.Now().Before(deadline) && (routerSpan == nil || backendSpan == nil) {
		if err := exp.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
		routerSpan, backendSpan = nil, nil
		spans := col.named("run")
		for i := range spans {
			if spans[i].TraceID != callerTrace {
				continue
			}
			if spans[i].ParentSpanID == callerSpan {
				routerSpan = &spans[i]
			} else {
				backendSpan = &spans[i]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if routerSpan == nil {
		t.Fatal("no router span parented to the caller was exported")
	}
	if backendSpan == nil {
		t.Fatal("no backend span in the caller's trace was exported")
	}
	if backendSpan.ParentSpanID != routerSpan.SpanID {
		t.Fatalf("backend span parent %q != router span %q",
			backendSpan.ParentSpanID, routerSpan.SpanID)
	}
}
