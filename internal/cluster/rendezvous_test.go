package cluster

import (
	"fmt"
	"testing"
)

func testPeers() []string {
	return []string{"http://n1:8081", "http://n2:8081", "http://n3:8081"}
}

// TestRankDeterministicAndTotal: Rank is a pure function of (key, peers)
// and always a permutation of the peer indices.
func TestRankDeterministicAndTotal(t *testing.T) {
	peers := testPeers()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("run:key-%d", i)
		a, b := Rank(key, peers), Rank(key, peers)
		if len(a) != len(peers) {
			t.Fatalf("len = %d", len(a))
		}
		seen := make(map[int]bool)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %s: non-deterministic rank %v vs %v", key, a, b)
			}
			seen[a[j]] = true
		}
		if len(seen) != len(peers) {
			t.Fatalf("key %s: rank %v is not a permutation", key, a)
		}
	}
}

// TestRankSpreadsKeys: with many keys, every peer owns a non-trivial
// share — the property that makes rendezvous hashing a load balancer,
// not just a router.
func TestRankSpreadsKeys(t *testing.T) {
	peers := testPeers()
	counts := make([]int, len(peers))
	const n = 3000
	for i := 0; i < n; i++ {
		counts[Rank(fmt.Sprintf("run:%032x", i), peers)[0]]++
	}
	for i, c := range counts {
		// Expect n/3 ± a wide tolerance; a hash pathology would send a
		// peer far outside [20%, 46%].
		if c < n/5 || c > n*46/100 {
			t.Fatalf("peer %d owns %d of %d keys — hash is not spreading", i, c, n)
		}
	}
}

// TestNodeLossRehomesOnlyItsKeys pins the minimal-disruption property
// that distinguishes rendezvous from mod-N hashing: removing one peer
// re-homes exactly the keys it owned — each to its second-ranked peer —
// and never moves a key between surviving peers.
func TestNodeLossRehomesOnlyItsKeys(t *testing.T) {
	peers := testPeers()
	const dead = 1
	survivors := []string{peers[0], peers[2]} // peer 1 removed
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("spec:key-%d", i)
		before := Rank(key, peers)
		after := Rank(key, survivors) // indices into survivors
		// Map survivor indices back to original indices.
		backMap := []int{0, 2}
		newOwner := backMap[after[0]]
		if before[0] != dead {
			if newOwner != before[0] {
				t.Fatalf("key %s: owner moved %d → %d though peer %d's loss should not affect it",
					key, before[0], newOwner, dead)
			}
			continue
		}
		// The dead peer's keys re-home to the pre-loss second rank.
		if newOwner != before[1] {
			t.Fatalf("key %s: re-homed to %d, want pre-loss fallback %d", key, newOwner, before[1])
		}
	}
}

// TestRankStableAcrossProcesses pins concrete rankings so a router
// rebuilt on another machine (or another release) computes identical
// placement: FNV-1a is content-defined, and these constants prove no
// seed or map-order nondeterminism crept in.
func TestRankStableAcrossProcesses(t *testing.T) {
	peers := testPeers()
	cases := map[string][]int{
		"run:3c54eddf99c8bae2b58c2824bede1a73":  {0, 1, 2},
		"run:e59156f785ac3302b1af258b29886ece":  {0, 1, 2},
		"spec:d612bfea063dcaa50c53f51348958b0e": {1, 0, 2},
	}
	for key, want := range cases {
		got := Rank(key, peers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Rank(%q) = %v, want %v", key, got, want)
			}
		}
	}
}
