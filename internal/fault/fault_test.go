package fault

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
)

func TestPlanDefaults(t *testing.T) {
	p := NewPlan(10)
	for n := 0; n < 10; n++ {
		if p.Behavior(n) != Correct || p.IsFaulty(n) {
			t.Fatalf("fresh plan marks node %d faulty", n)
		}
	}
	if p.NumFaulty() != 0 {
		t.Error("fresh plan has faulty nodes")
	}
	if p.Link(0, 1) != LinkCorrect {
		t.Error("fresh plan has non-correct link")
	}
}

func TestNilPlanIsAllCorrect(t *testing.T) {
	var p *Plan
	if p.IsFaulty(3) || p.Behavior(3) != Correct || p.Link(1, 2) != LinkCorrect {
		t.Error("nil plan should behave all-correct")
	}
	if p.FaultyNodes() != nil || p.NumFaulty() != 0 {
		t.Error("nil plan reports faults")
	}
}

func TestFailSilentLinks(t *testing.T) {
	p := NewPlan(5)
	p.SetBehavior(2, FailSilent)
	if p.Link(2, 3) != LinkStuck0 {
		t.Error("fail-silent node's out-link not stuck-0")
	}
	if p.Link(3, 2) != LinkCorrect {
		t.Error("in-link of a fail-silent node should stay correct")
	}
}

func TestByzantineLinkOverrides(t *testing.T) {
	p := NewPlan(5)
	p.SetBehavior(1, Byzantine)
	// Without explicit assignment, Byzantine defaults to stuck-0.
	if p.Link(1, 0) != LinkStuck0 {
		t.Error("unassigned Byzantine link not stuck-0")
	}
	p.SetLink(1, 0, LinkStuck1)
	if p.Link(1, 0) != LinkStuck1 {
		t.Error("explicit link override ignored")
	}
}

func TestFaultyNodesSorted(t *testing.T) {
	p := NewPlan(10)
	p.SetBehavior(7, Byzantine)
	p.SetBehavior(2, FailSilent)
	got := p.FaultyNodes()
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Errorf("FaultyNodes = %v", got)
	}
}

func TestRandomizeByzantine(t *testing.T) {
	h := grid.MustHex(5, 6)
	p := NewPlan(h.NumNodes())
	n := h.NodeID(2, 3)
	p.SetBehavior(n, Byzantine)
	p.RandomizeByzantine(h.Graph, sim.NewRNG(3))
	for _, l := range h.Out(n) {
		m := p.Link(n, l.To)
		if m != LinkStuck0 && m != LinkStuck1 {
			t.Fatalf("Byzantine out-link mode %v", m)
		}
	}
	// Over many nodes/seeds both modes must appear.
	counts := map[LinkMode]int{}
	for seed := uint64(0); seed < 20; seed++ {
		p := NewPlan(h.NumNodes())
		p.SetBehavior(n, Byzantine)
		p.RandomizeByzantine(h.Graph, sim.NewRNG(seed))
		for _, l := range h.Out(n) {
			counts[p.Link(n, l.To)]++
		}
	}
	if counts[LinkStuck0] == 0 || counts[LinkStuck1] == 0 {
		t.Errorf("randomization never produced both modes: %v", counts)
	}
}

func TestCondition1Detects(t *testing.T) {
	h := grid.MustHex(5, 8)
	p := NewPlan(h.NumNodes())
	// Two faulty nodes that share an out-neighbor: (1,3) and (1,4) are both
	// in-neighbors of (2,3) (its lower-left and lower-right).
	p.SetBehavior(h.NodeID(1, 3), FailSilent)
	p.SetBehavior(h.NodeID(1, 4), FailSilent)
	ok, violating := Condition1(h.Graph, p)
	if ok {
		t.Fatal("Condition 1 not violated by adjacent lower neighbors")
	}
	if violating != h.NodeID(2, 3) {
		// Multiple nodes violate; the reported one must at least be real.
		faultyIn := 0
		for _, l := range h.In(violating) {
			if p.IsFaulty(l.From) {
				faultyIn++
			}
		}
		if faultyIn <= 1 {
			t.Errorf("reported node %d is not actually violating", violating)
		}
	}
}

func TestCondition1AcceptsSeparated(t *testing.T) {
	h := grid.MustHex(10, 10)
	p := NewPlan(h.NumNodes())
	p.SetBehavior(h.NodeID(1, 1), Byzantine)
	p.SetBehavior(h.NodeID(8, 6), Byzantine)
	if ok, v := Condition1(h.Graph, p); !ok {
		t.Errorf("well-separated faults rejected (violating node %d)", v)
	}
}

func TestCondition1SingleFaultAlwaysOK(t *testing.T) {
	h := grid.MustHex(6, 6)
	for n := 0; n < h.NumNodes(); n++ {
		p := NewPlan(h.NumNodes())
		p.SetBehavior(n, Byzantine)
		if ok, _ := Condition1(h.Graph, p); !ok {
			t.Fatalf("single fault at node %d violates Condition 1", n)
		}
	}
}

func TestPlaceRandomSatisfiesCondition1(t *testing.T) {
	h := grid.MustHex(20, 20)
	rng := sim.NewRNG(9)
	for f := 0; f <= 6; f++ {
		placed, err := PlaceRandom(h.Graph, f, nil, rng, 0)
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		if len(placed) != f {
			t.Fatalf("placed %d faults, want %d", len(placed), f)
		}
		p := NewPlan(h.NumNodes())
		for _, n := range placed {
			p.SetBehavior(n, Byzantine)
		}
		if ok, v := Condition1(h.Graph, p); !ok {
			t.Fatalf("f=%d placement violates Condition 1 at node %d", f, v)
		}
		// Distinctness.
		seen := map[int]bool{}
		for _, n := range placed {
			if seen[n] {
				t.Fatalf("duplicate fault node %d", n)
			}
			seen[n] = true
		}
	}
}

func TestPlaceRandomImpossible(t *testing.T) {
	h := grid.MustHex(1, 3)
	// 6 nodes total; every pair of distinct nodes shares an out-neighbor in
	// such a tiny grid, so large f must fail.
	if _, err := PlaceRandom(h.Graph, 5, nil, sim.NewRNG(1), 50); err == nil {
		t.Error("expected placement failure on tiny grid")
	}
	if _, err := PlaceRandom(h.Graph, 100, nil, sim.NewRNG(1), 50); err == nil {
		t.Error("expected error for f > candidates")
	}
}

func TestPlaceRandomCandidates(t *testing.T) {
	h := grid.MustHex(10, 10)
	cands := h.Layer(5)
	placed, err := PlaceRandom(h.Graph, 2, cands, sim.NewRNG(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range placed {
		if h.LayerOf(n) != 5 {
			t.Errorf("fault %d placed outside candidate layer", n)
		}
	}
}

func TestMarkColumnFailSilent(t *testing.T) {
	h := grid.MustHex(4, 6)
	p := NewPlan(h.NumNodes())
	MarkColumnFailSilent(h, p, 2)
	for l := 0; l <= 4; l++ {
		if p.Behavior(h.NodeID(l, 2)) != FailSilent {
			t.Fatalf("(%d,2) not fail-silent", l)
		}
	}
	if p.NumFaulty() != 5 {
		t.Errorf("NumFaulty = %d, want 5", p.NumFaulty())
	}
}

func TestBehaviorStrings(t *testing.T) {
	if Correct.String() != "correct" || FailSilent.String() != "fail-silent" || Byzantine.String() != "byzantine" {
		t.Error("behavior names wrong")
	}
	if LinkCorrect.String() != "correct" || LinkStuck0.String() != "stuck-0" || LinkStuck1.String() != "stuck-1" {
		t.Error("link mode names wrong")
	}
}

func TestCheckLivenessFaultFree(t *testing.T) {
	h := grid.MustHex(6, 8)
	ok, starved := CheckLiveness(h.Graph, NewPlan(h.NumNodes()))
	if !ok || len(starved) != 0 {
		t.Errorf("fault-free grid reported starved nodes: %v", starved)
	}
}

func TestCheckLivenessAdjacentCrashPair(t *testing.T) {
	// Two adjacent crashed nodes starve their common upper neighbor.
	h := grid.MustHex(6, 8)
	p := NewPlan(h.NumNodes())
	p.SetBehavior(h.NodeID(3, 4), FailSilent)
	p.SetBehavior(h.NodeID(3, 5), FailSilent)
	ok, starved := CheckLiveness(h.Graph, p)
	if ok {
		t.Fatal("adjacent crash pair reported live")
	}
	// (4,4) starves, and so do nodes that depend on it exclusively — at
	// least (4,4) must be in the list.
	found := false
	for _, n := range starved {
		if n == h.NodeID(4, 4) {
			found = true
		}
	}
	if !found {
		t.Errorf("starved list %v misses the common upper neighbor", starved)
	}
}

func TestCheckLivenessSourceDistanceTwoDeadlock(t *testing.T) {
	// The pattern Condition 1 misses: two fail-silent *sources* at cyclic
	// column distance 2 deadlock the two layer-1 nodes between them, even
	// though every node has at most one faulty in-neighbor.
	h := grid.MustHex(6, 12)
	p := NewPlan(h.NumNodes())
	p.SetBehavior(h.NodeID(0, 3), FailSilent)
	p.SetBehavior(h.NodeID(0, 5), FailSilent)
	if ok, _ := Condition1(h.Graph, p); !ok {
		t.Fatal("distance-2 source faults should satisfy literal Condition 1")
	}
	ok, starved := CheckLiveness(h.Graph, p)
	if ok {
		t.Fatal("distance-2 source faults reported live")
	}
	want := map[int]bool{h.NodeID(1, 3): true, h.NodeID(1, 4): true}
	for _, n := range starved {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("starved list %v misses the deadlocked layer-1 pair", starved)
	}
}

func TestCheckLivenessStuck1Helps(t *testing.T) {
	// A Byzantine node with stuck-at-1 outputs can keep its upper
	// neighborhood live where a fail-silent one starves it.
	h := grid.MustHex(6, 8)
	p := NewPlan(h.NumNodes())
	a, b := h.NodeID(3, 4), h.NodeID(3, 5)
	p.SetBehavior(a, Byzantine)
	p.SetBehavior(b, Byzantine)
	for _, n := range []int{a, b} {
		for _, out := range h.Out(n) {
			p.SetLink(n, out.To, LinkStuck1)
		}
	}
	if ok, starved := CheckLiveness(h.Graph, p); !ok {
		t.Errorf("stuck-1 pair starved nodes: %v", starved)
	}
}

func TestPlaceRandomSourcesAvoidDeadlock(t *testing.T) {
	// Placement restricted to layer 0 must avoid the distance-2 deadlock.
	h := grid.MustHex(8, 12)
	rng := sim.NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		placed, err := PlaceRandom(h.Graph, 3, h.Layer(0), rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		p := NewPlan(h.NumNodes())
		for _, n := range placed {
			p.SetBehavior(n, FailSilent)
		}
		if ok, starved := CheckLiveness(h.Graph, p); !ok {
			t.Fatalf("trial %d: placement %v starves %v", trial, placed, starved)
		}
	}
}
