// Package fault describes fault plans for HEX simulations: which nodes are
// Byzantine or fail-silent, how each faulty outgoing link behaves, and the
// fault-separation Condition 1 of the paper, including uniformly random
// fault placement under that condition (Section 3.2).
package fault

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/sim"
)

// Behavior classifies a node's failure mode.
type Behavior uint8

const (
	// Correct nodes faithfully execute the HEX algorithm.
	Correct Behavior = iota
	// FailSilent nodes never send any trigger message (all outgoing links
	// constant 0), the paper's "fail-silent" / crash model.
	FailSilent
	// Byzantine nodes choose, per outgoing link, a constant 0 (never
	// trigger) or constant 1 (permanently trigger) output, exactly the
	// fault model of the paper's testbench (Section 4.1, item (4)).
	Byzantine
)

// String returns the name of the behavior.
func (b Behavior) String() string {
	switch b {
	case Correct:
		return "correct"
	case FailSilent:
		return "fail-silent"
	case Byzantine:
		return "byzantine"
	}
	return fmt.Sprintf("Behavior(%d)", uint8(b))
}

// LinkMode is the effective behavior of a directed link.
type LinkMode uint8

const (
	// LinkCorrect delivers messages with a delay in [d−, d+].
	LinkCorrect LinkMode = iota
	// LinkStuck0 never delivers anything: the receiver's input stays low.
	LinkStuck0
	// LinkStuck1 holds the receiver's input permanently high: the
	// corresponding memory flag is always set.
	LinkStuck1
)

// String returns the name of the link mode.
func (m LinkMode) String() string {
	switch m {
	case LinkCorrect:
		return "correct"
	case LinkStuck0:
		return "stuck-0"
	case LinkStuck1:
		return "stuck-1"
	}
	return fmt.Sprintf("LinkMode(%d)", uint8(m))
}

type linkKey struct{ from, to int }

// Plan is a complete fault assignment for one simulation run: per-node
// behaviors plus per-link overrides. The zero value of Plan is not usable;
// construct with NewPlan.
type Plan struct {
	behavior []Behavior
	links    map[linkKey]LinkMode
}

// NewPlan returns an all-correct plan for a graph with numNodes nodes.
func NewPlan(numNodes int) *Plan {
	return &Plan{
		behavior: make([]Behavior, numNodes),
		links:    make(map[linkKey]LinkMode),
	}
}

// None returns a fault-free plan usable for any graph; callers may pass nil
// plans to the simulator instead, but an explicit empty plan reads better in
// experiment code.
func None(numNodes int) *Plan { return NewPlan(numNodes) }

// SetBehavior marks node n with the given behavior. For Byzantine nodes the
// per-link outputs must then be fixed with SetLink or RandomizeByzantine.
func (p *Plan) SetBehavior(n int, b Behavior) { p.behavior[n] = b }

// Behavior returns node n's failure mode.
func (p *Plan) Behavior(n int) Behavior {
	if p == nil {
		return Correct
	}
	return p.behavior[n]
}

// IsFaulty reports whether node n is not correct.
func (p *Plan) IsFaulty(n int) bool { return p.Behavior(n) != Correct }

// SetLink overrides the mode of the directed link from→to.
func (p *Plan) SetLink(from, to int, m LinkMode) { p.links[linkKey{from, to}] = m }

// Link resolves the effective mode of the directed link from→to: an explicit
// link override wins, otherwise the sender's behavior decides (fail-silent ⇒
// stuck-0; Byzantine without explicit assignment ⇒ stuck-0).
func (p *Plan) Link(from, to int) LinkMode {
	if p == nil {
		return LinkCorrect
	}
	if m, ok := p.links[linkKey{from, to}]; ok {
		return m
	}
	switch p.behavior[from] {
	case FailSilent, Byzantine:
		return LinkStuck0
	}
	return LinkCorrect
}

// FaultyNodes returns the sorted ids of all non-correct nodes.
func (p *Plan) FaultyNodes() []int {
	if p == nil {
		return nil
	}
	var out []int
	for n, b := range p.behavior {
		if b != Correct {
			out = append(out, n)
		}
	}
	return out
}

// NumFaulty returns the number of non-correct nodes.
func (p *Plan) NumFaulty() int { return len(p.FaultyNodes()) }

// RandomizeByzantine assigns, for every Byzantine node, an independent
// uniformly random stuck-0/stuck-1 mode to each of its outgoing links in g,
// as the paper's testbench does ("each Byzantine node randomly selects its
// behavior on each outgoing link", Section 4.3).
func (p *Plan) RandomizeByzantine(g *grid.Graph, rng *sim.RNG) {
	for n, b := range p.behavior {
		if b != Byzantine {
			continue
		}
		for _, l := range g.Out(n) {
			mode := LinkStuck0
			if rng.Bool() {
				mode = LinkStuck1
			}
			p.SetLink(n, l.To, mode)
		}
	}
}

// Condition1 reports whether the plan satisfies the paper's fault-separation
// condition: "For each node, no more than one of its incoming links connects
// to a faulty neighbor." If it fails, the first offending node is returned.
func Condition1(g *grid.Graph, p *Plan) (ok bool, violating int) {
	for n := 0; n < g.NumNodes(); n++ {
		faultyIn := 0
		for _, l := range g.In(n) {
			if p.IsFaulty(l.From) {
				faultyIn++
			}
		}
		if faultyIn > 1 {
			return false, n
		}
	}
	return true, -1
}

// ErrPlacement is returned when random placement cannot satisfy Condition 1.
type ErrPlacement struct {
	F, Tries int
}

func (e *ErrPlacement) Error() string {
	return fmt.Sprintf("fault: could not place %d faults under Condition 1 in %d tries", e.F, e.Tries)
}

// PlaceRandom returns f distinct node ids drawn uniformly at random from the
// candidates such that marking exactly those nodes faulty satisfies
// Condition 1 *and* leaves every correct node triggerable (CheckLiveness,
// evaluated for the worst case of fail-silent faults), using rejection
// sampling (the paper: "faulty nodes were placed uniformly at random under
// the constraint that Condition 1 held" — see CheckLiveness for the one
// layer-0 pattern where Condition 1 alone does not suffice). candidates nil
// means all nodes of g. It fails after maxTries rejections.
func PlaceRandom(g *grid.Graph, f int, candidates []int, rng *sim.RNG, maxTries int) ([]int, error) {
	if f == 0 {
		return nil, nil
	}
	if candidates == nil {
		candidates = make([]int, g.NumNodes())
		for i := range candidates {
			candidates[i] = i
		}
	}
	if f > len(candidates) {
		return nil, fmt.Errorf("fault: cannot place %d faults among %d candidates", f, len(candidates))
	}
	if maxTries <= 0 {
		maxTries = 10000
	}
	for try := 0; try < maxTries; try++ {
		perm := rng.Perm(len(candidates))
		chosen := make([]int, f)
		for i := 0; i < f; i++ {
			chosen[i] = candidates[perm[i]]
		}
		p := NewPlan(g.NumNodes())
		for _, n := range chosen {
			p.SetBehavior(n, FailSilent) // behavior irrelevant for the check
		}
		if ok, _ := Condition1(g, p); ok {
			if live, _ := CheckLiveness(g, p); live {
				sort.Ints(chosen)
				return chosen, nil
			}
		}
	}
	return nil, &ErrPlacement{F: f, Tries: maxTries}
}

// MarkColumnFailSilent marks the entire column col of the hexagonal grid h
// fail-silent, the "barrier of dead nodes" device used in the worst-case
// construction of Fig. 5.
func MarkColumnFailSilent(h *grid.Hex, p *Plan, col int) {
	for l := 0; l <= h.L; l++ {
		p.SetBehavior(h.NodeID(l, col), FailSilent)
	}
}

// CheckLiveness computes, by fixpoint, which correct nodes can ever be
// triggered given the plan: layer-0 correct nodes trigger by fiat; a
// forwarding node is triggerable when some guard pair of its topology has
// both inputs satisfied — by a stuck-at-1 link, or by a triggerable correct
// in-neighbor over a correct link. It returns the correct forwarding nodes
// that can never fire ("starved").
//
// This is strictly stronger than Condition 1. Condition 1 almost implies
// liveness, but misses one pattern this reproduction surfaced: two faulty
// *clock sources* at cyclic column distance 2 starve the two layer-1 nodes
// between them (each can only complete a guard pair that includes the
// other). For ℓ ≥ 1 the analogous fault pattern already violates
// Condition 1 (the column between the faults would have two faulty
// in-neighbors); for layer 0 it does not, because sources have no incoming
// links. Placement helpers therefore enforce Condition 1 *and* liveness.
func CheckLiveness(g *grid.Graph, p *Plan) (ok bool, starved []int) {
	triggerable := make([]bool, g.NumNodes())
	for _, n := range g.Layer(0) {
		triggerable[n] = !p.IsFaulty(n)
	}
	pairs := g.GuardPairs()
	for changed := true; changed; {
		changed = false
		for n := 0; n < g.NumNodes(); n++ {
			if triggerable[n] || p.IsFaulty(n) || g.LayerOf(n) == 0 {
				continue
			}
			var have [grid.NumRoles]bool
			for _, l := range g.In(n) {
				switch p.Link(l.From, n) {
				case LinkStuck1:
					have[l.Role] = true
				case LinkCorrect:
					if triggerable[l.From] {
						have[l.Role] = true
					}
				}
			}
			for _, pr := range pairs {
				if have[pr[0]] && have[pr[1]] {
					triggerable[n] = true
					changed = true
					break
				}
			}
		}
	}
	for n := 0; n < g.NumNodes(); n++ {
		if !p.IsFaulty(n) && g.LayerOf(n) != 0 && !triggerable[n] {
			starved = append(starved, n)
		}
	}
	return len(starved) == 0, starved
}
