package layout

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func TestFlattenedCylinderPositions(t *testing.T) {
	h := grid.MustHex(4, 8)
	e := FlattenedCylinder(h)
	// Column 0 at x=0, column 7 folded over it at x=0.5.
	if e.Pos[h.NodeID(2, 0)].X != 0 {
		t.Error("front column misplaced")
	}
	if e.Pos[h.NodeID(2, 7)].X != 0.5 {
		t.Errorf("folded column at x=%v, want 0.5", e.Pos[h.NodeID(2, 7)].X)
	}
	// Layer advances along Y.
	if e.Pos[h.NodeID(3, 1)].Y != 3 {
		t.Error("layer coordinate wrong")
	}
}

func TestFlattenedCylinderProximityGap(t *testing.T) {
	h := grid.MustHex(6, 12)
	e := FlattenedCylinder(h)
	// Nodes from opposite sides of the cylinder lie within one pitch of
	// each other but are ~W/2 hops apart.
	gap, a, b := e.WorstProximityGap(1.0)
	if gap < h.W/2-1 {
		t.Errorf("proximity gap %d (pair %d,%d), want ≈W/2 = %d", gap, a, b, h.W/2)
	}
	// The witnessing pair really is physically close.
	if e.Pos[a].Distance(e.Pos[b]) > 1.0 {
		t.Error("witness pair not physically close")
	}
}

func TestCircularEmbeddingBoundedLinks(t *testing.T) {
	d, err := grid.NewDoubling(6, grid.GeometricDoubling(8))
	if err != nil {
		t.Fatal(err)
	}
	e := Circular(d)
	// Doubling keeps node spacing within a ring roughly constant, so all
	// links stay short relative to the outer circumference.
	maxLink := e.MaxLinkLength()
	outer := 2 * math.Pi * (2.0 + float64(len(d.Widths)-1))
	if maxLink > outer/4 {
		t.Errorf("circular embedding has a link of length %.2f (outer circumference %.2f)", maxLink, outer)
	}
	// And physical proximity implies graph proximity: the gap at one pitch
	// radius stays far below the flattened cylinder's Θ(W).
	gap, _, _ := e.WorstProximityGap(1.0)
	if gap > 6 {
		t.Errorf("circular proximity gap %d, want small", gap)
	}
}

func TestGraphDistances(t *testing.T) {
	h := grid.MustHex(3, 6)
	e := FlattenedCylinder(h)
	d := e.GraphDistances(h.NodeID(0, 0))
	if d[h.NodeID(0, 0)] != 0 {
		t.Error("self distance not 0")
	}
	// (1,0) is an out-neighbor (upper-right) of (0,0).
	if d[h.NodeID(1, 0)] != 1 {
		t.Errorf("distance to upper-right = %d", d[h.NodeID(1, 0)])
	}
	// Everything is reachable in the undirected sense.
	for n, v := range d {
		if v < 0 {
			t.Fatalf("node %d unreachable", n)
		}
	}
}

func TestLinkLengthsCount(t *testing.T) {
	h := grid.MustHex(3, 6)
	e := FlattenedCylinder(h)
	total := 0
	for n := 0; n < h.NumNodes(); n++ {
		total += len(h.Out(n))
	}
	if got := len(e.LinkLengths()); got != total {
		t.Errorf("link length count %d, want %d", got, total)
	}
	if e.MaxLinkLength() <= 0 {
		t.Error("no positive link length")
	}
}

func TestPhysicalNeighborsRadius(t *testing.T) {
	h := grid.MustHex(3, 8)
	e := FlattenedCylinder(h)
	n := h.NodeID(1, 1)
	close := e.PhysicalNeighbors(n, 1.0)
	if len(close) == 0 {
		t.Fatal("no physical neighbors at radius 1")
	}
	for _, m := range close {
		if e.Pos[n].Distance(e.Pos[m]) > 1.0 {
			t.Errorf("node %d beyond radius", m)
		}
	}
	// Larger radius ⊇ smaller radius.
	wider := e.PhysicalNeighbors(n, 2.0)
	if len(wider) < len(close) {
		t.Error("radius monotonicity violated")
	}
}
