// Package layout quantifies the embedding discussion of Section 5 of the
// paper. A cylindric HEX grid must be flattened onto a chip's (at most two)
// interconnect layers; the naive "squeeze flat" embedding makes nodes from
// opposite sides of the cylinder physically adjacent although they are up
// to W/2 hops apart in the grid — such neighbors can carry large skew, so
// "actually half of the nodes cannot be used for clocking". The circular
// embedding of the doubling-layer topology (Fig. 21) avoids this: physical
// neighbors are graph neighbors and link lengths stay bounded. This package
// computes node positions for both embeddings and the metrics behind that
// argument: link lengths, and the worst grid distance between physically
// close nodes.
package layout

import (
	"math"

	"repro/internal/grid"
)

// Point is a position in abstract chip coordinates (units of node pitch).
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Embedding assigns every node of a graph a physical position.
type Embedding struct {
	G   *grid.Graph
	Pos []Point
}

// FlattenedCylinder embeds a cylindric HEX grid by squeezing the cylinder
// flat: columns 0 … W/2−1 run on the front side, columns W/2 … W−1 fold
// back over them (offset by half a pitch, as on a second interconnect
// layer). Layers advance along Y.
func FlattenedCylinder(h *grid.Hex) *Embedding {
	e := &Embedding{G: h.Graph, Pos: make([]Point, h.NumNodes())}
	half := h.W / 2
	for n := 0; n < h.NumNodes(); n++ {
		l, c := h.Coord(n)
		var x float64
		if c < half {
			x = float64(c)
		} else {
			// Folded back: column W−1 lies over column 0.
			x = float64(h.W-1-c) + 0.5
		}
		e.Pos[n] = Point{X: x, Y: float64(l)}
	}
	return e
}

// Circular embeds a doubling topology in concentric rings: layer l sits at
// radius r0 + l with its nodes spread evenly around the circle, the
// arrangement sketched in Fig. 21.
func Circular(d *grid.Doubling) *Embedding {
	e := &Embedding{G: d.Graph, Pos: make([]Point, d.NumNodes())}
	const r0 = 2.0
	for l, w := range d.Widths {
		radius := r0 + float64(l)
		for j, n := range d.Layer(l) {
			angle := 2 * math.Pi * float64(j) / float64(w)
			e.Pos[n] = Point{X: radius * math.Cos(angle), Y: radius * math.Sin(angle)}
		}
	}
	return e
}

// LinkLengths returns the physical length of every directed link.
func (e *Embedding) LinkLengths() []float64 {
	var out []float64
	for n := 0; n < e.G.NumNodes(); n++ {
		for _, l := range e.G.Out(n) {
			out = append(out, e.Pos[n].Distance(e.Pos[l.To]))
		}
	}
	return out
}

// MaxLinkLength returns the longest physical link.
func (e *Embedding) MaxLinkLength() float64 {
	max := 0.0
	for _, v := range e.LinkLengths() {
		if v > max {
			max = v
		}
	}
	return max
}

// GraphDistances returns the undirected hop distances from node src to all
// nodes (BFS over the union of in- and out-links).
func (e *Embedding) GraphDistances(src int) []int {
	dist := make([]int, e.G.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range append(e.G.OutNeighborsOf(n), e.G.InNeighborsOf(n)...) {
			if dist[m] < 0 {
				dist[m] = dist[n] + 1
				queue = append(queue, m)
			}
		}
	}
	return dist
}

// PhysicalNeighbors returns, for node n, all other nodes within the given
// physical radius.
func (e *Embedding) PhysicalNeighbors(n int, radius float64) []int {
	var out []int
	for m := 0; m < e.G.NumNodes(); m++ {
		if m != n && e.Pos[n].Distance(e.Pos[m]) <= radius {
			out = append(out, m)
		}
	}
	return out
}

// WorstProximityGap returns the largest grid-hop distance between any two
// nodes that are physically within the given radius of each other — the
// quantity behind Section 5's warning: for the flattened cylinder it is
// Θ(W), for the circular embedding it stays small. It also reports one
// witnessing pair.
func (e *Embedding) WorstProximityGap(radius float64) (gap, a, b int) {
	gap, a, b = 0, -1, -1
	for n := 0; n < e.G.NumNodes(); n++ {
		dist := e.GraphDistances(n)
		for _, m := range e.PhysicalNeighbors(n, radius) {
			if dist[m] > gap {
				gap, a, b = dist[m], n, m
			}
		}
	}
	return gap, a, b
}
