// Package coalesce is the request-coalescing half of the serving stack,
// split out of internal/service so that both a backend node (which
// executes simulations on a local worker pool) and a cluster router
// (which forwards misses to the owning shard over HTTP) share one
// implementation of "never do identical work twice".
//
// A Coalescer owns a bounded LRU of finished values keyed by canonical
// request key and a map of in-flight computations. Do answers a key from
// the cache, by joining an identical in-flight computation, or by
// submitting one new computation through the caller-provided Submit hook
// — the executor. What "execute" means is the executor's business: a
// worker-pool job on a backend, an HTTP forward on a router. The
// coalescing guarantee is the same either way: at most one computation
// per key is in flight at any moment, and a finished value is published
// to the cache before the flight deregisters, so no identical
// computation can slip in between.
package coalesce

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrShuttingDown is returned by Do after Close has begun.
var ErrShuttingDown = errors.New("coalesce: shutting down")

// Value is a finished, serialized response body ready to replay to any
// request with the same canonical key.
type Value struct {
	Body        []byte
	ContentType string
	// Events is the simulation event count behind this value, replayed
	// into responses so coalesced answers stay indistinguishable from
	// fresh ones.
	Events uint64
}

// Hooks customize a Coalescer for its executor. All fields are optional
// except Submit.
type Hooks struct {
	// Submit schedules run for execution; returning an error (queue
	// full, too many forwards in flight) aborts the flight and is
	// returned from Do verbatim. Submit is called with the coalescer's
	// lock held — it must not block (a bounded-channel send with a
	// default case, a semaphore try-acquire, a goroutine spawn).
	Submit func(run func()) error
	// SecondTier, when non-nil, probes a lower cache tier after a
	// memory miss (the durable store on a backend). A hit is promoted
	// into the memory cache. The hook is responsible for its own trace
	// notes and metrics.
	SecondTier func(ctx context.Context, key string) (*Value, bool)
	// Persist, when non-nil, runs after a successful computation's
	// waiters have been released (write-behind). It runs on the
	// executor's goroutine, so on a backend the worker persists the
	// record before taking its next job and draining the pool doubles
	// as a flush barrier.
	Persist func(key string, v *Value)
	// OnHit, OnMiss, and OnJoin are metric taps: memory-cache hit,
	// memory-cache miss, and join of an in-flight computation.
	OnHit, OnMiss, OnJoin func()
}

// flight is one in-progress computation that any number of identical
// requests may wait on. Its computation runs on a context detached from
// the leader request (with the leader's timeout), so a coalesced flight
// survives the leader disconnecting; it is cancelled only when the last
// waiter leaves (waiters, guarded by Coalescer.mu, tracks membership).
type flight struct {
	done    chan struct{} // closed when val/err are final
	val     *Value
	err     error
	cancel  context.CancelFunc // cancels the flight's detached context
	waiters int                // guarded by Coalescer.mu
}

// Coalescer deduplicates computations by canonical key. Construct with
// New; all methods are safe for concurrent use.
type Coalescer struct {
	cache *lruCache
	hooks Hooks

	mu       sync.Mutex
	inflight map[string]*flight
	closed   bool
}

// New returns a Coalescer whose memory cache holds up to cacheEntries
// values (<= 0 disables caching; in-flight dedup still applies).
func New(cacheEntries int, hooks Hooks) *Coalescer {
	return &Coalescer{
		cache:    newLRUCache(cacheEntries),
		hooks:    hooks,
		inflight: make(map[string]*flight),
	}
}

// Close marks the coalescer as shutting down: subsequent Do calls that
// would start a new computation fail with ErrShuttingDown. In-flight
// computations are not cancelled — the executor drains them.
func (c *Coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// Closed reports whether Close has begun.
func (c *Coalescer) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// CacheLen returns the number of cached values.
func (c *Coalescer) CacheLen() int { return c.cache.Len() }

// CachePut publishes a value directly (used by tests and warm-up paths).
func (c *Coalescer) CachePut(key string, v *Value) { c.cache.Put(key, v) }

// Do returns the value for the canonical key: from the cache, from the
// second tier, by joining an identical in-flight computation, or by
// submitting compute for execution. The computation runs on a context
// detached from the caller's: it carries timeout as its deadline but is
// not cancelled by the leader request going away — only by the last
// interested waiter leaving. ctx governs only how long this caller
// waits, and carries the request trace that rides along into the
// detached context.
func (c *Coalescer) Do(ctx context.Context, timeout time.Duration, key string, compute func(context.Context) (*Value, error)) (*Value, error) {
	tr := obs.FromContext(ctx)
	endLookup := tr.StartSpan("cache-lookup")
	if v, ok := c.cache.Get(key); ok {
		endLookup()
		tr.Note("cache-hit")
		tap(c.hooks.OnHit)
		return v, nil
	}
	tap(c.hooks.OnMiss)
	// Join an already-in-flight computation before probing the second
	// tier: the flight's answer is coming anyway, so a joiner paying a
	// disk read for a guaranteed miss (the flight exists because the
	// tiers missed) would be pure waste — and under a stampede of
	// identical requests, N-1 wasted reads.
	if f := c.join(key); f != nil {
		endLookup()
		tap(c.hooks.OnJoin)
		tr.Note("join-inflight")
		return c.wait(ctx, f)
	}
	if c.hooks.SecondTier != nil {
		if v, ok := c.hooks.SecondTier(ctx, key); ok {
			endLookup()
			// Promote the second-tier hit so repeats stay in memory.
			// Read-through does not write back: the record is already
			// durable.
			c.cache.Put(key, v)
			return v, nil
		}
	}
	endLookup()

	c.mu.Lock()
	// Re-check the flight map with the lock held: a computation may have
	// started while this caller was probing the second tier.
	if f, ok := c.inflight[key]; ok {
		f.waiters++
		c.mu.Unlock()
		tap(c.hooks.OnJoin)
		tr.Note("join-inflight")
		return c.wait(ctx, f)
	}
	// Re-check the cache with the in-flight map locked: a flight that
	// finished between the fast-path lookup and here published its result
	// to the cache *before* deregistering, so one of the two checks always
	// sees it and no identical computation ever runs twice.
	if v, ok := c.cache.Get(key); ok {
		c.mu.Unlock()
		tr.Note("cache-hit")
		tap(c.hooks.OnHit)
		return v, nil
	}
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShuttingDown
	}
	fctx, cancel := context.WithTimeout(context.Background(), timeout)
	// The leader's trace rides on the detached context so the computation
	// keeps reporting spans (and a late flight dump) into it even after
	// the leader's own HTTP context is gone.
	fctx = obs.WithTrace(fctx, tr)
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	enqueued := time.Now()
	run := func() {
		tr.AddSpan("queue-wait", enqueued, time.Now())
		f.val, f.err = compute(fctx)
		cancel() // release the deadline timer; the flight is decided
		if f.err == nil {
			c.cache.Put(key, f.val)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
		if f.err == nil && c.hooks.Persist != nil {
			// Write-behind: waiters are already released via f.done.
			c.hooks.Persist(key, f.val)
		}
	}
	if err := c.hooks.Submit(run); err != nil {
		c.mu.Unlock()
		cancel()
		return nil, err
	}
	c.inflight[key] = f
	c.mu.Unlock()
	return c.wait(ctx, f)
}

// DoInline answers key with the same tiering as Do — memory cache,
// in-flight join, second tier — but executes a needed computation
// synchronously on the caller's goroutine instead of submitting it to the
// executor, and skips the Persist hook, reporting fresh=true instead so
// the caller can persist the value itself. It exists for batched
// execution: a batch job already occupies an executor worker, so its
// units must not re-enter the bounded queue (self-deadlock at capacity),
// and their persists are amortized by the batch into one group commit.
// The computation runs on ctx directly — an inline flight has no detached
// lifetime; joiners of other Do calls still ride on it.
func (c *Coalescer) DoInline(ctx context.Context, key string, compute func(context.Context) (*Value, error)) (*Value, bool, error) {
	tr := obs.FromContext(ctx)
	if v, ok := c.cache.Get(key); ok {
		tap(c.hooks.OnHit)
		return v, false, nil
	}
	tap(c.hooks.OnMiss)
	if f := c.join(key); f != nil {
		tap(c.hooks.OnJoin)
		tr.Note("join-inflight")
		v, err := c.wait(ctx, f)
		return v, false, err
	}
	if c.hooks.SecondTier != nil {
		if v, ok := c.hooks.SecondTier(ctx, key); ok {
			c.cache.Put(key, v)
			return v, false, nil
		}
	}

	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		f.waiters++
		c.mu.Unlock()
		tap(c.hooks.OnJoin)
		tr.Note("join-inflight")
		v, err := c.wait(ctx, f)
		return v, false, err
	}
	if v, ok := c.cache.Get(key); ok {
		c.mu.Unlock()
		tap(c.hooks.OnHit)
		return v, false, nil
	}
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrShuttingDown
	}
	fctx, cancel := context.WithCancel(ctx)
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val, f.err = compute(fctx)
	cancel()
	if f.err == nil {
		c.cache.Put(key, f.val)
	}
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.val, f.err == nil, f.err
}

// SubmitDetached schedules run on the executor under the coalescer's
// lock, keeping the closed-check/enqueue pair atomic with Close exactly
// like a Do-initiated submission. Batch jobs use it to claim one executor
// slot for a whole group of inline computations.
func (c *Coalescer) SubmitDetached(run func()) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrShuttingDown
	}
	return c.hooks.Submit(run)
}

// join registers the caller as a waiter on the key's in-flight
// computation, returning nil when none exists.
func (c *Coalescer) join(key string) *flight {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.inflight[key]
	if f != nil {
		f.waiters++
	}
	return f
}

// wait blocks until the flight completes or ctx is done, whichever is
// first. A waiter abandoning a flight does not cancel it for the others;
// when the *last* waiter leaves an unfinished flight, its detached context
// is cancelled so abandoned computations stop consuming the executor.
func (c *Coalescer) wait(ctx context.Context, f *flight) (*Value, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		c.mu.Unlock()
		if last {
			select {
			case <-f.done:
				// The flight finished while this waiter was leaving; its
				// result is already cached. Nothing to cancel.
			default:
				f.cancel()
			}
		}
		return nil, ctx.Err()
	}
}

// tap invokes a metric callback when set.
func tap(f func()) {
	if f != nil {
		f()
	}
}
