package coalesce

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// direct returns hooks that run submissions synchronously on a goroutine
// (an unbounded executor), counting hits/misses/joins into the counters.
func direct(hits, misses, joins *atomic.Int64) Hooks {
	return Hooks{
		Submit: func(run func()) error { go run(); return nil },
		OnHit:  func() { hits.Add(1) },
		OnMiss: func() { misses.Add(1) },
		OnJoin: func() { joins.Add(1) },
	}
}

// TestCoalescingUnderConcurrency is the split-refactor pin: N concurrent
// Do calls for one key must execute compute exactly once, every caller
// must observe the same value, and each of the N-1 non-leaders must be
// accounted as either a join or a cache hit. This is the guarantee the
// service relied on before coalescing was extracted, now held by the
// shared package both the backend and the cluster router use.
func TestCoalescingUnderConcurrency(t *testing.T) {
	var hits, misses, joins atomic.Int64
	var computes atomic.Int64
	c := New(16, direct(&hits, &misses, &joins))

	release := make(chan struct{})
	compute := func(ctx context.Context) (*Value, error) {
		computes.Add(1)
		<-release
		return &Value{Body: []byte("v"), ContentType: "text/plain", Events: 7}, nil
	}

	const n = 32
	var wg sync.WaitGroup
	var started sync.WaitGroup
	results := make([]*Value, n)
	errs := make([]error, n)
	started.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			v, err := c.Do(context.Background(), time.Minute, "k", compute)
			results[i], errs[i] = v, err
		}(i)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let callers reach the flight
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(results[i].Body) != "v" || results[i].Events != 7 {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
	}
	if accounted := joins.Load() + hits.Load(); accounted != n-1 {
		t.Fatalf("joins(%d) + hits(%d) = %d, want %d", joins.Load(), hits.Load(), accounted, n-1)
	}
}

// TestDistinctKeysDoNotCoalesce proves the inverse: different keys run
// their own computations.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var hits, misses, joins atomic.Int64
	var computes atomic.Int64
	c := New(16, direct(&hits, &misses, &joins))
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			v, err := c.Do(context.Background(), time.Minute, key, func(context.Context) (*Value, error) {
				computes.Add(1)
				return &Value{Body: []byte(key)}, nil
			})
			if err != nil || string(v.Body) != key {
				t.Errorf("key %s: v=%v err=%v", key, v, err)
			}
		}(key)
	}
	wg.Wait()
	if got := computes.Load(); got != 3 {
		t.Fatalf("computes = %d, want 3", got)
	}
}

// TestSecondTierPromotion: a second-tier hit is served without compute
// and promoted into the memory cache.
func TestSecondTierPromotion(t *testing.T) {
	var tierProbes atomic.Int64
	c := New(16, Hooks{
		Submit: func(run func()) error { t.Error("submit must not run"); return nil },
		SecondTier: func(ctx context.Context, key string) (*Value, bool) {
			tierProbes.Add(1)
			return &Value{Body: []byte("disk")}, true
		},
	})
	for i := 0; i < 2; i++ {
		v, err := c.Do(context.Background(), time.Minute, "k", nil)
		if err != nil || string(v.Body) != "disk" {
			t.Fatalf("i=%d: v=%v err=%v", i, v, err)
		}
	}
	if got := tierProbes.Load(); got != 1 {
		t.Fatalf("second tier probed %d times, want 1 (promotion must serve the repeat)", got)
	}
}

// TestSubmitRejectionPropagates: the executor refusing a flight aborts
// it with the executor's error and registers nothing.
func TestSubmitRejectionPropagates(t *testing.T) {
	errFull := errors.New("full")
	c := New(16, Hooks{Submit: func(func()) error { return errFull }})
	if _, err := c.Do(context.Background(), time.Minute, "k", nil); !errors.Is(err, errFull) {
		t.Fatalf("err = %v, want %v", err, errFull)
	}
	c.hooks.Submit = func(run func()) error { go run(); return nil }
	v, err := c.Do(context.Background(), time.Minute, "k", func(context.Context) (*Value, error) {
		return &Value{Body: []byte("ok")}, nil
	})
	if err != nil || string(v.Body) != "ok" {
		t.Fatalf("after rejection the key must be computable: v=%v err=%v", v, err)
	}
}

// TestCloseRefusesNewFlights: Close marks the coalescer down for new
// computations but cached values still serve.
func TestCloseRefusesNewFlights(t *testing.T) {
	c := New(16, Hooks{Submit: func(run func()) error { go run(); return nil }})
	if _, err := c.Do(context.Background(), time.Minute, "k", func(context.Context) (*Value, error) {
		return &Value{Body: []byte("v")}, nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if !c.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if v, err := c.Do(context.Background(), time.Minute, "k", nil); err != nil || string(v.Body) != "v" {
		t.Fatalf("cached value after Close: v=%v err=%v", v, err)
	}
	if _, err := c.Do(context.Background(), time.Minute, "new", nil); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("new key after Close: err = %v, want ErrShuttingDown", err)
	}
}

// TestLastWaiterCancelsFlight: when every waiter abandons a flight, its
// detached context is cancelled so the executor can stop working.
func TestLastWaiterCancelsFlight(t *testing.T) {
	cancelled := make(chan struct{})
	c := New(16, Hooks{Submit: func(run func()) error { go run(); return nil }})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := c.Do(ctx, time.Minute, "k", func(fctx context.Context) (*Value, error) {
			<-fctx.Done()
			close(cancelled)
			return nil, fctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("waiter err = %v, want Canceled", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	<-done
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context was not cancelled after the last waiter left")
	}
}

// TestPersistRunsAfterRelease: the write-behind hook observes the final
// value after waiters are released.
func TestPersistRunsAfterRelease(t *testing.T) {
	persisted := make(chan string, 1)
	c := New(16, Hooks{
		Submit:  func(run func()) error { go run(); return nil },
		Persist: func(key string, v *Value) { persisted <- key + ":" + string(v.Body) },
	})
	if _, err := c.Do(context.Background(), time.Minute, "k", func(context.Context) (*Value, error) {
		return &Value{Body: []byte("v")}, nil
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-persisted:
		if got != "k:v" {
			t.Fatalf("persisted %q, want %q", got, "k:v")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Persist never ran")
	}
}
