package coalesce

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU over canonical request keys. Values
// are deterministic functions of their canonical request, so entries
// never expire — they are only evicted by capacity.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[string]*list.Element
}

type lruEntry struct {
	key string
	val *Value
}

// newLRUCache returns a cache bounded to cap entries; cap <= 0 disables
// caching entirely (every Get misses, Put is a no-op).
func newLRUCache(cap int) *lruCache {
	return &lruCache{cap: cap, order: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the entry for key, marking it most recently used.
func (c *lruCache) Get(key string) (*Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes an entry, evicting the least recently used
// entry when over capacity.
func (c *lruCache) Put(key string, val *Value) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
