// Package hex is a library reproduction of "HEX: Scaling honeycombs is
// easier than scaling clock trees" (Dolev, Függer, Lenzen, Perner, Schmid;
// SPAA 2013 / JCSS 2016): a Byzantine fault-tolerant, self-stabilizing
// clock distribution scheme on a cylindric hexagonal grid.
//
// The package is a facade over the implementation packages:
//
//   - grid construction (the HEX topology of Fig. 1),
//   - the HEX pulse forwarding algorithm (Algorithm 1) executed on a
//     deterministic discrete-event simulator,
//   - layer-0 skew scenarios, delay models and fault plans,
//   - skew analysis (Definition 3), self-stabilization estimation, and the
//     paper's closed-form bounds (Theorem 1, Lemma 5, Condition 2).
//
// Quick start:
//
//	g, _ := hex.NewGrid(50, 20)
//	rep, _ := hex.RunPulse(hex.PulseConfig{Grid: g, Scenario: hex.ScenarioUniformDPlus, Seed: 7})
//	fmt.Println(rep.IntraSummary)
package hex

import (
	"context"
	"errors"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/theory"
)

// Re-exported core types. Aliases expose the internal implementations as
// the public API surface.
type (
	// Time is a simulated instant or duration in integer picoseconds.
	Time = sim.Time
	// Bounds is the link delay interval [d−, d+].
	Bounds = delay.Bounds
	// Params are the HEX algorithm parameters (timeouts, guard).
	Params = core.Params
	// Scenario selects the layer-0 skew pattern of Section 4.2.
	Scenario = source.Scenario
	// Grid is the cylindric hexagonal grid of Fig. 1.
	Grid = grid.Hex
	// Graph is the generic layered communication graph HEX runs on.
	Graph = grid.Graph
	// FaultPlan assigns Byzantine/fail-silent behaviors to nodes and links.
	FaultPlan = fault.Plan
	// Wave is a triggering-time matrix of one pulse with skew accessors.
	Wave = analysis.Wave
	// Result is a raw simulation outcome (trigger histories).
	Result = core.Result
	// Summary is the {min, q5, avg, q95, max} statistic set of the paper.
	Summary = stats.Summary
	// Timeouts are Condition 2's self-stabilization parameters.
	Timeouts = theory.Timeouts
	// Drift is the clock drift bound ϑ as a rational.
	Drift = theory.Drift
	// DelayModel assigns per-message link delays.
	DelayModel = delay.Model
	// Schedule is a multi-pulse layer-0 firing plan.
	Schedule = source.Schedule
	// RNG is the deterministic random generator used throughout.
	RNG = sim.RNG
	// Tracer observes the simulation's internal events (sends, deliveries,
	// flag expiries, fires, sleep/wake); see obs.FlightRecorder and
	// trace.Recorder for ready-made implementations.
	Tracer = core.Tracer
)

// Layer-0 skew scenarios (Table 1's (i)–(iv)).
const (
	ScenarioZero          = source.Zero
	ScenarioUniformDMinus = source.UniformDMinus
	ScenarioUniformDPlus  = source.UniformDPlus
	ScenarioRamp          = source.Ramp
)

// Failure modes.
const (
	Correct    = fault.Correct
	FailSilent = fault.FailSilent
	Byzantine  = fault.Byzantine
)

// Convenient time units.
const (
	Picosecond = sim.Picosecond
	Nanosecond = sim.Nanosecond
)

// AutoWedges, as a Wedges value, selects one wedge worker per CPU.
const AutoWedges = core.AutoWedges

// PaperBounds is the delay interval used throughout the paper's evaluation:
// [7.161, 8.197] ns, ε = 1.036 ns.
var PaperBounds = delay.Paper

// errNilGrid is returned by the Run functions when the config lacks a grid.
var errNilGrid = errors.New("hex: Config.Grid is required; construct one with NewGrid")

// PaperDrift is the ϑ = 1.05 drift bound of the paper's experiments.
var PaperDrift = theory.PaperDrift

// NewGrid constructs a HEX grid with layers 0..L and W columns.
func NewGrid(L, W int) (*Grid, error) { return grid.NewHex(L, W) }

// DefaultParams returns algorithm parameters suitable for single-pulse
// experiments with the paper's delay interval.
func DefaultParams() Params { return core.DefaultParams() }

// NewFaultPlan returns an all-correct fault plan for g.
func NewFaultPlan(g *Grid) *FaultPlan { return fault.NewPlan(g.NumNodes()) }

// PlaceRandomFaults marks f uniformly random nodes of g with the given
// behavior such that Condition 1 (fault separation) holds, randomizing
// Byzantine per-link outputs. It returns the chosen node ids.
func PlaceRandomFaults(g *Grid, plan *FaultPlan, f int, behavior fault.Behavior, rng *RNG) ([]int, error) {
	placed, err := fault.PlaceRandom(g.Graph, f, nil, rng, 0)
	if err != nil {
		return nil, err
	}
	for _, n := range placed {
		plan.SetBehavior(n, behavior)
	}
	if behavior == fault.Byzantine {
		plan.RandomizeByzantine(g.Graph, rng)
	}
	return placed, nil
}

// NewRNG returns a deterministic random generator.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// PulseConfig configures a single-pulse simulation.
type PulseConfig struct {
	// Grid is required.
	Grid *Grid
	// Scenario selects the layer-0 skews (default ScenarioZero); Offsets,
	// if non-nil, overrides it with explicit layer-0 triggering times.
	Scenario Scenario
	Offsets  []Time
	// Params defaults to DefaultParams.
	Params Params
	// Bounds defaults to PaperBounds; ignored if Delay is set.
	Bounds Bounds
	// Delay overrides the uniform-random delay model.
	Delay DelayModel
	// Faults defaults to fault-free.
	Faults *FaultPlan
	// Seed drives all randomness.
	Seed uint64
	// Wedges selects the wedge-parallel engine: P ≥ 2 workers over P column
	// wedges, AutoWedges for one per CPU, 0 or 1 for the serial engine.
	// Purely a performance knob — results are bit-identical for every
	// value. Runs with a Trace fall back to serial (see core.Config.Wedges).
	Wedges int
	// Context, if non-nil, cancels the simulation: once it is done the
	// engine stops early and RunPulse returns the context's error.
	Context context.Context
	// Trace, if non-nil, observes every internal event of the run. The
	// callbacks run synchronously inside the event loop; a nil Trace
	// leaves the hot path untouched.
	Trace Tracer
}

// PulseReport is the outcome of RunPulse.
type PulseReport struct {
	Wave   *Wave
	Result *Result
	// IntraSummary/InterSummary summarize the neighbor skews (ns) of this
	// pulse per Definition 3 and Section 4.1.
	IntraSummary Summary
	InterSummary Summary
}

// RunPulse propagates one pulse through the grid and reports its skews.
func RunPulse(cfg PulseConfig) (*PulseReport, error) {
	if cfg.Grid == nil {
		return nil, errNilGrid
	}
	if cfg.Bounds == (Bounds{}) {
		cfg.Bounds = PaperBounds
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
		cfg.Params.Bounds = cfg.Bounds
	}
	if cfg.Delay == nil {
		cfg.Delay = delay.Uniform{Bounds: cfg.Bounds}
	}
	if cfg.Faults == nil {
		cfg.Faults = fault.NewPlan(cfg.Grid.NumNodes())
	}
	offsets := cfg.Offsets
	if offsets == nil {
		offsets = source.Offsets(cfg.Scenario, cfg.Grid.W, cfg.Bounds,
			sim.NewRNG(sim.DeriveSeed(cfg.Seed, "offsets")))
	}
	res, err := core.Run(core.Config{
		Graph:    cfg.Grid.Graph,
		Params:   cfg.Params,
		Delay:    cfg.Delay,
		Faults:   cfg.Faults,
		Schedule: source.SinglePulse(offsets),
		Seed:     cfg.Seed,
		Wedges:   cfg.Wedges,
		Context:  cfg.Context,
		Trace:    cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	wave := analysis.WaveFromResult(cfg.Grid.Graph, res, cfg.Faults, 0)
	// SummarizeScaled over the raw skews is bit-identical to Summarize
	// over the nanosecond floats (see its doc comment) but sorts integers.
	skews := make([]sim.Time, 0, 3*cfg.Grid.Graph.NumNodes())
	intra := stats.SummarizeScaled(wave.AppendIntraSkewTimes(skews), float64(sim.Nanosecond))
	inter := stats.SummarizeScaled(wave.AppendInterSkewTimes(skews), float64(sim.Nanosecond))
	return &PulseReport{
		Wave:         wave,
		Result:       res,
		IntraSummary: intra,
		InterSummary: inter,
	}, nil
}

// StabilizationConfig configures a multi-pulse run from arbitrary initial
// states.
type StabilizationConfig struct {
	Grid *Grid
	// Scenario selects the per-pulse layer-0 skews.
	Scenario Scenario
	// Pulses is the number of pulses to generate (default 10).
	Pulses int
	// Timeouts are the Condition 2 parameters; derive them with
	// Condition2. Required.
	Timeouts Timeouts
	// Bounds defaults to PaperBounds.
	Bounds Bounds
	// Faults defaults to fault-free.
	Faults *FaultPlan
	Seed   uint64
	// Wedges selects the wedge-parallel engine; see PulseConfig.Wedges.
	Wedges int
	// Context, if non-nil, cancels the simulation: once it is done the
	// engine stops early and RunStabilization returns the context's error.
	Context context.Context
}

// StabilizationReport is the outcome of RunStabilization.
type StabilizationReport struct {
	Result *Result
	// Assignment windows the trigger histories into per-pulse waves.
	Assignment *analysis.PulseAssignment
	// StabilizedAt is the 1-based pulse from which all observed pulses
	// satisfied the σ(f,ℓ) = 2d+ threshold; 0 if never.
	StabilizedAt int
}

// RunStabilization starts every node in an arbitrary state and forwards a
// pulse train, reporting when the grid's skews settle.
func RunStabilization(cfg StabilizationConfig) (*StabilizationReport, error) {
	if cfg.Grid == nil {
		return nil, errNilGrid
	}
	if cfg.Timeouts == (Timeouts{}) {
		return nil, errors.New("hex: StabilizationConfig.Timeouts is required; derive it with Condition2")
	}
	if cfg.Bounds == (Bounds{}) {
		cfg.Bounds = PaperBounds
	}
	if cfg.Pulses == 0 {
		cfg.Pulses = 10
	}
	if cfg.Faults == nil {
		cfg.Faults = fault.NewPlan(cfg.Grid.NumNodes())
	}
	sched := source.NewSchedule(cfg.Scenario, cfg.Grid.W, cfg.Pulses, cfg.Bounds,
		cfg.Timeouts.Separation, sim.NewRNG(sim.DeriveSeed(cfg.Seed, "sched")))
	res, err := core.Run(core.Config{
		Graph: cfg.Grid.Graph,
		Params: Params{
			Bounds:    cfg.Bounds,
			TLinkMin:  cfg.Timeouts.TLinkMin,
			TLinkMax:  cfg.Timeouts.TLinkMax,
			TSleepMin: cfg.Timeouts.TSleepMin,
			TSleepMax: cfg.Timeouts.TSleepMax,
		},
		Delay:      delay.Uniform{Bounds: cfg.Bounds},
		Faults:     cfg.Faults,
		Schedule:   sched,
		RandomInit: true,
		Seed:       cfg.Seed,
		Wedges:     cfg.Wedges,
		Context:    cfg.Context,
	})
	if err != nil {
		return nil, err
	}
	pa := analysis.AssignPulses(cfg.Grid.Graph, res, cfg.Faults, sched, cfg.Bounds)
	th := analysis.ThresholdsFromSigma(analysis.ConstantSigma(2*cfg.Bounds.Max), cfg.Bounds)
	rep := &StabilizationReport{Result: res, Assignment: pa}
	if k, ok := pa.StabilizationPulse(th); ok {
		rep.StabilizedAt = k + 1
	}
	return rep, nil
}

// Theorem1Bound returns the worst-case intra-layer skew bound of Theorem 1
// for layer l of a width-w grid with layer-0 skew potential delta0.
func Theorem1Bound(l, w int, b Bounds, delta0 Time) Time {
	return theory.Theorem1IntraBound(l, w, b, delta0)
}

// Lemma5Bound returns the coarse pulse skew bound of Lemma 5.
func Lemma5Bound(spread Time, L, f int, b Bounds) Time {
	return theory.Lemma5PulseSkewBound(spread, L, f, b)
}

// Condition2 computes the self-stabilization timeouts of Condition 2 for a
// stable skew σ, grid length L, f faults, and drift ϑ.
func Condition2(sigma Time, b Bounds, L, f int, theta Drift) Timeouts {
	return theory.Condition2(sigma, b, L, f, theta)
}

// RunPulseTrain forwards an explicit multi-pulse layer-0 schedule (for
// example one produced by a pulse generation network) through the grid,
// with the algorithm parameters taken from Condition 2 timeouts.
func RunPulseTrain(g *Grid, plan *FaultPlan, sched *Schedule, to Timeouts, seed uint64) (*Result, error) {
	if g == nil {
		return nil, errNilGrid
	}
	if plan == nil {
		plan = fault.NewPlan(g.NumNodes())
	}
	return core.Run(core.Config{
		Graph: g.Graph,
		Params: Params{
			Bounds:    PaperBounds,
			TLinkMin:  to.TLinkMin,
			TLinkMax:  to.TLinkMax,
			TSleepMin: to.TSleepMin,
			TSleepMax: to.TSleepMax,
		},
		Delay:    delay.Uniform{Bounds: PaperBounds},
		Faults:   plan,
		Schedule: sched,
		Seed:     seed,
	})
}

// NewGridPlus constructs the augmented HEX+ topology of Section 5: every
// node receives from two additional lower in-neighbors, which removes the
// fault-induced skew growth of the plain grid.
func NewGridPlus(L, W int) (*Grid, error) { return grid.NewHexPlus(L, W) }
