package hex

import (
	"math"
	"testing"
)

// TestGoldenRun pins the exact output of one fixed-seed simulation. Every
// run is a pure function of (config, seed); if this test starts failing,
// the simulator's observable behavior changed — intentional changes must
// update the constants and be called out in the changelog, since they
// silently re-randomize every experiment in EXPERIMENTS.md.
func TestGoldenRun(t *testing.T) {
	g, err := NewGrid(50, 20)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioUniformDPlus, Seed: 424242})
	if err != nil {
		t.Fatal(err)
	}

	approx := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if rep.IntraSummary.N != 1000 || rep.InterSummary.N != 2000 {
		t.Fatalf("sample counts changed: %d/%d", rep.IntraSummary.N, rep.InterSummary.N)
	}
	approx("intra.Min", rep.IntraSummary.Min, 0.001)
	approx("intra.Avg", rep.IntraSummary.Avg, 0.5029840000000003)
	approx("intra.Max", rep.IntraSummary.Max, 5.724)
	approx("inter.Min", rep.InterSummary.Min, 7.164)
	approx("inter.Avg", rep.InterSummary.Avg, 8.028129000000002)
	approx("inter.Max", rep.InterSummary.Max, 14.699)

	if got := rep.Wave.T[g.NodeID(50, 0)]; got != 405024*Picosecond {
		t.Errorf("t(50,0) = %v, want 405.024ns", got)
	}
}
