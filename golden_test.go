package hex

import (
	"math"
	"testing"
)

// TestGoldenRun pins the exact output of one fixed-seed simulation. Every
// run is a pure function of (config, seed); if this test starts failing,
// the simulator's observable behavior changed — intentional changes must
// update the constants and be called out in the changelog, since they
// silently re-randomize every experiment in EXPERIMENTS.md.
func TestGoldenRun(t *testing.T) {
	g, err := NewGrid(50, 20)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioUniformDPlus, Seed: 424242})
	if err != nil {
		t.Fatal(err)
	}

	approx := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if rep.IntraSummary.N != 1000 || rep.InterSummary.N != 2000 {
		t.Fatalf("sample counts changed: %d/%d", rep.IntraSummary.N, rep.InterSummary.N)
	}
	approx("intra.Min", rep.IntraSummary.Min, 0.001)
	approx("intra.Avg", rep.IntraSummary.Avg, 0.46874600000000005)
	approx("intra.Max", rep.IntraSummary.Max, 5.825)
	approx("inter.Min", rep.InterSummary.Min, 7.164)
	approx("inter.Avg", rep.InterSummary.Avg, 7.999080999999997)
	approx("inter.Max", rep.InterSummary.Max, 14.707)

	if got := rep.Wave.T[g.NodeID(50, 0)]; got != 403577*Picosecond {
		t.Errorf("t(50,0) = %v, want 403.577ns", got)
	}

	// The wedge-parallel engine must reproduce the same golden run bit for
	// bit: Wedges is a performance knob, not part of a run's identity.
	for _, p := range []int{2, 8} {
		rp, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioUniformDPlus, Seed: 424242, Wedges: p})
		if err != nil {
			t.Fatal(err)
		}
		if rp.Result.Events != rep.Result.Events {
			t.Errorf("wedges=%d: %d events, serial executed %d", p, rp.Result.Events, rep.Result.Events)
		}
		for n := range rep.Wave.T {
			if rp.Wave.T[n] != rep.Wave.T[n] {
				t.Fatalf("wedges=%d: t[%d] = %v, serial %v", p, n, rp.Wave.T[n], rep.Wave.T[n])
			}
		}
	}
}
