package hex

import "testing"

// TestSmokeSinglePulse is a coarse end-to-end sanity check: one pulse on
// the paper's grid must trigger every node exactly once with small skews.
func TestSmokeSinglePulse(t *testing.T) {
	g, err := NewGrid(50, 20)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioZero, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Wave.AllForwardersTriggered() {
		t.Fatal("not all forwarding nodes triggered")
	}
	for n, ts := range rep.Result.Triggers {
		if len(ts) != 1 {
			t.Fatalf("node %d triggered %d times, want 1", n, len(ts))
		}
	}
	t.Logf("intra: %v", rep.IntraSummary)
	t.Logf("inter: %v", rep.InterSummary)
	if rep.IntraSummary.Max > 25 {
		t.Errorf("intra max %.3f ns implausibly large", rep.IntraSummary.Max)
	}
	if rep.InterSummary.Min < PaperBounds.Min.Nanoseconds()-0.001 {
		t.Errorf("inter min %.3f below d− %.3f", rep.InterSummary.Min, PaperBounds.Min.Nanoseconds())
	}
}
