package hex_test

import (
	"fmt"

	hex "repro"
)

// The basic workflow: build the paper's grid, run one pulse, inspect the
// neighbor skews.
func Example() {
	g, err := hex.NewGrid(50, 20)
	if err != nil {
		panic(err)
	}
	rep, err := hex.RunPulse(hex.PulseConfig{Grid: g, Scenario: hex.ScenarioZero, Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes triggered:", rep.Wave.TriggeredCount())
	fmt.Println("all forwarders fired:", rep.Wave.AllForwardersTriggered())
	// Output:
	// nodes triggered: 1020
	// all forwarders fired: true
}

// Theorem 1's worst-case bound for the paper's parameters.
func ExampleTheorem1Bound() {
	bound := hex.Theorem1Bound(50, 20, hex.PaperBounds, 0)
	fmt.Println(bound)
	// Output:
	// 11.305ns
}

// Condition 2's self-stabilization timeouts for a stable skew of 30 ns.
func ExampleCondition2() {
	to := hex.Condition2(30*hex.Nanosecond, hex.PaperBounds, 50, 5, hex.PaperDrift)
	fmt.Println("T-link: ", to.TLinkMin)
	fmt.Println("T+link: ", to.TLinkMax)
	fmt.Println("T-sleep:", to.TSleepMin)
	// Output:
	// T-link:  31.036ns
	// T+link:  32.588ns
	// T-sleep: 81.57ns
}

// Injecting Byzantine faults under the paper's separation Condition 1.
func ExamplePlaceRandomFaults() {
	g, _ := hex.NewGrid(20, 12)
	plan := hex.NewFaultPlan(g)
	placed, err := hex.PlaceRandomFaults(g, plan, 3, hex.Byzantine, hex.NewRNG(5))
	if err != nil {
		panic(err)
	}
	fmt.Println("faults placed:", len(placed))
	rep, _ := hex.RunPulse(hex.PulseConfig{Grid: g, Faults: plan, Seed: 5})
	fmt.Println("correct nodes triggered:", rep.Wave.TriggeredCount() == g.NumNodes()-3)
	// Output:
	// faults placed: 3
	// correct nodes triggered: true
}

// Self-stabilization from arbitrary initial states.
func ExampleRunStabilization() {
	g, _ := hex.NewGrid(10, 8)
	to := hex.Condition2(4*hex.PaperBounds.Max, hex.PaperBounds, g.L, 0, hex.PaperDrift)
	rep, err := hex.RunStabilization(hex.StabilizationConfig{
		Grid:     g,
		Scenario: hex.ScenarioUniformDPlus,
		Timeouts: to,
		Seed:     3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("stabilized within Theorem 2's bound:", rep.StabilizedAt > 0 && rep.StabilizedAt <= g.L+1)
	// Output:
	// stabilized within Theorem 2's bound: true
}
