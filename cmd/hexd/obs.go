package main

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// parseArmPolicy maps the -arm-on flag (a comma-separated predicate
// list) plus its tuning flags to an obs.ArmPolicy. An empty list means
// the policy is disabled and obs.NewArmer returns nil.
func parseArmPolicy(list string, skewMarginPct, slowPct float64) (obs.ArmPolicy, error) {
	var p obs.ArmPolicy
	for _, tok := range strings.Split(list, ",") {
		switch tok = strings.TrimSpace(tok); tok {
		case "":
		case "skew":
			p.OnSkew = true
			p.SkewMarginPct = skewMarginPct
		case "error":
			p.OnError = true
		case "audit":
			p.OnAuditFail = true
		case "slow":
			p.OnSlow = true
			p.SlowPct = slowPct
		default:
			return obs.ArmPolicy{}, fmt.Errorf("invalid -arm-on predicate %q: want skew|error|audit|slow", tok)
		}
	}
	return p, nil
}
