package main

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs/export"
	"repro/internal/service"
)

// routerConfig carries the flag values that apply in -router mode.
type routerConfig struct {
	addr           string
	peers          string
	healthInterval time.Duration
	cacheEntries   int
	traceRing      int
	drain          time.Duration
	sweepUnits     int
	sweepInflight  int
	exporter       *export.Exporter
	limits         service.Options
}

// runRouter is main's -router branch: the same serve/drain lifecycle as
// a backend node, wrapped around a cluster.Router instead of a local
// service.
func runRouter(logger *slog.Logger, cfg routerConfig) {
	var peerList []string
	for _, p := range strings.Split(cfg.peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) == 0 {
		logger.Error("-router requires -peers (comma-separated backend base URLs)")
		os.Exit(2)
	}
	rt, err := cluster.New(cluster.Options{
		Peers:          peerList,
		Service:        cfg.limits,
		HealthInterval: cfg.healthInterval,
		CacheEntries:   cfg.cacheEntries,
		TraceRing:      cfg.traceRing,
		Logger:         logger,
		Exporter:       cfg.exporter,
	})
	if err != nil {
		logger.Error("router init failed", "err", err.Error())
		os.Exit(2)
	}
	// A router hosts sweep jobs too: units fan out to their canonical
	// keys' owning shards via rt.RunUnit. Specs are not durable here (the
	// router is stateless by design) — shard-side stores still dedupe a
	// re-submitted sweep down to store hits.
	mgr := jobs.NewManager(jobs.Options{
		Runner:      rt,
		Service:     cfg.limits,
		MaxUnits:    cfg.sweepUnits,
		MaxInFlight: cfg.sweepInflight,
		Logger:      logger,
		Trace:       rt.Ring(),
		Exporter:    cfg.exporter,
		Retryable: func(err error) bool {
			return errors.Is(err, service.ErrQueueFull) || errors.Is(err, cluster.ErrBusy)
		},
	})
	rt.Metrics.AddExtra(mgr.Metrics.WriteText)
	rt.Metrics.AddExtra(cfg.exporter.WriteMetrics)

	mux := http.NewServeMux()
	mux.Handle("/", rt.Handler())
	mgr.Register(mux)
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("router listening", "addr", cfg.addr, "peers", peerList)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("router draining", "window", cfg.drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown error", "err", err.Error())
	}
	mgr.Close()
	rt.Close()
	if err := cfg.exporter.Close(shutdownCtx); err != nil {
		logger.Warn("otlp drain incomplete", "err", err.Error(), "dropped", cfg.exporter.Dropped())
	}
	logger.Info("router drained, bye")
}
