// Command hexd serves HEX simulations over HTTP: a bounded worker pool
// with admission control, a deterministic result cache with in-flight
// deduplication, per-request deadlines, and graceful drain on SIGTERM.
//
// With -store-dir, results are also persisted to a disk-backed,
// checksummed store that survives restarts (see DESIGN.md §10).
//
// With -router, hexd is instead a fleet router: it executes nothing
// locally and rendezvous-hashes canonical request keys across the
// -peers backends, with health checks, deterministic re-homing on node
// loss, and fleet-wide request coalescing (see DESIGN.md §13).
//
// Usage:
//
//	hexd -addr :8080 -workers 8 -queue 32 -cache 512 -timeout 30s \
//	     -store-dir /var/lib/hexd -store-max-bytes 268435456
//
//	hexd -router -addr :8080 \
//	     -peers http://n1:8081,http://n2:8081,http://n3:8081
//
// Endpoints:
//
//	POST /v1/run            {"l":50,"w":20,"scenario":"iii","faults":2,"seed":7}
//	                        (?trace=1 arms the sim flight recorder)
//	POST /v1/spec           {"l":50,"w":20,"scenario":"ramp","runs":250}
//	POST /v1/sweeps         {"scenarios":["iii","ramp"],"faults":[0,2],"seed_count":20}
//	GET  /v1/sweeps/{id}            (job status)
//	GET  /v1/sweeps/{id}/events     (SSE result stream; Last-Event-ID resumes)
//	GET  /v1/debug/requests (recent request traces, newest first)
//	GET  /healthz
//	GET  /metrics
//
// Logs are structured JSON on stderr (log/slog); every request line and
// every error response body carries the request's X-Request-ID.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "job queue depth (0 = 4x workers)")
		cacheSize    = flag.Int("cache", 512, "result cache entries (negative disables)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "clamp for per-request deadlines")
		maxNodes     = flag.Int("max-nodes", 250000, "largest admissible grid, in nodes")
		maxRuns      = flag.Int("max-runs", 2000, "largest admissible runs count per /v1/spec")
		drainwindow  = flag.Duration("drain", 30*time.Second, "graceful shutdown window")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; the endpoints expose heap and CPU internals)")
		storeDir     = flag.String("store-dir", "", "durable result store directory (empty disables; survives restarts)")
		storeMax     = flag.Int64("store-max-bytes", 256<<20, "on-disk byte budget for -store-dir (<= 0 = unlimited)")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug|info|warn|error (debug logs every request)")
		debugRing    = flag.Int("debug-requests", 64, "completed request traces kept for GET /v1/debug/requests (negative disables)")
		flightEvents = flag.Int("flight-events", 4096, "sim events retained by the ?trace=1 flight recorder (negative disables)")
		wedges       = flag.String("wedges", "0", "wedge-parallel engine per simulation: column wedge count, or 'auto' for GOMAXPROCS; 0/1 = serial (sweeps already parallelize across runs); results and cache keys are identical either way")
		sweepUnits   = flag.Int("sweep-max-units", 10000, "largest admissible unit count for one POST /v1/sweeps job")
		sweepFlight  = flag.Int("sweep-inflight", 0, "sweep units dispatched concurrently into the worker pool (0 = 2x GOMAXPROCS)")

		otlpEndpoint = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL for span export (e.g. http://localhost:4318; empty disables)")
		otlpQueue    = flag.Int("otlp-queue", 1024, "bounded span-export queue depth; a full queue drops spans rather than blocking the sim path")
		armOn        = flag.String("arm-on", "", "comma-separated flight-recorder arm predicates: skew|error|audit|slow (empty disables; see DESIGN.md §16)")
		armSkewPct   = flag.Float64("arm-skew-margin-pct", 0, "arm-on=skew: percent slack over the Theorem-1 envelope before arming")
		armSlowPct   = flag.Float64("arm-slow-pct", 99, "arm-on=slow: wall-time percentile a run must exceed to arm")

		routerOn       = flag.Bool("router", false, "run as a fleet router: forward to -peers instead of executing locally")
		peers          = flag.String("peers", "", "comma-separated backend base URLs for -router (e.g. http://n1:8081,http://n2:8081)")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "router: period of the backend /healthz probe loop")
		routerCache    = flag.Int("router-cache", 0, "router: entries in the router's own result LRU (0 disables; shards hold the real caches)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "hexd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	nWedges, err := parseWedges(*wedges)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hexd: %v\n", err)
		os.Exit(2)
	}

	armPolicy, err := parseArmPolicy(*armOn, *armSkewPct, *armSlowPct)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hexd: %v\n", err)
		os.Exit(2)
	}
	// nil when -otlp-endpoint is empty; every call site is nil-safe, so
	// the exporter is always compiled in but costs nothing when off.
	exporter := export.New(export.Options{Endpoint: *otlpEndpoint, QueueSize: *otlpQueue})
	if exporter.Enabled() {
		logger.Info("otlp export enabled", "endpoint", *otlpEndpoint, "queue", *otlpQueue)
	}

	if *routerOn {
		runRouter(logger, routerConfig{
			addr:           *addr,
			peers:          *peers,
			healthInterval: *healthInterval,
			cacheEntries:   *routerCache,
			traceRing:      *debugRing,
			drain:          *drainwindow,
			sweepUnits:     *sweepUnits,
			sweepInflight:  *sweepFlight,
			exporter:       exporter,
			limits: service.Options{
				DefaultTimeout: *timeout,
				MaxTimeout:     *maxTimeout,
				MaxNodes:       *maxNodes,
				MaxRuns:        *maxRuns,
			},
		})
		return
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, *storeMax); err != nil {
			logger.Error("open store failed", "dir", *storeDir, "err", err.Error())
			os.Exit(1)
		}
		logger.Info("store recovered", "dir", *storeDir,
			"records", st.Len(), "bytes", st.Bytes(), "quarantined", st.Quarantined())
	}

	svc := service.New(service.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxNodes:       *maxNodes,
		MaxRuns:        *maxRuns,
		Store:          st,
		Logger:         logger,
		TraceRing:      *debugRing,
		FlightEvents:   *flightEvents,
		Wedges:         nWedges,
		Exporter:       exporter,
		Arm:            obs.NewArmer(armPolicy),
	})
	// Sweep jobs share the service's store, trace ring, metrics endpoint,
	// and admission limits; units run through svc.RunUnit, i.e. the same
	// pipeline as interactive /v1/run traffic.
	mgr := jobs.NewManager(jobs.Options{
		Runner:      svc,
		Service:     svc.Options(),
		Store:       st,
		MaxUnits:    *sweepUnits,
		MaxInFlight: *sweepFlight,
		Logger:      logger,
		Trace:       svc.Ring(),
		Exporter:    exporter,
	})
	svc.Metrics.AddExtra(mgr.Metrics.WriteText)
	svc.Metrics.AddExtra(exporter.WriteMetrics)
	if n, err := mgr.Recover(); err != nil {
		logger.Error("sweep job recovery failed", "err", err.Error())
		os.Exit(1)
	} else if n > 0 {
		logger.Info("sweep jobs resumed", "jobs", n)
	}

	apiMux := http.NewServeMux()
	apiMux.Handle("/", svc.Handler())
	mgr.Register(apiMux)
	var handler http.Handler = apiMux
	if *pprofOn {
		// Wrap the API mux rather than touching http.DefaultServeMux, so
		// the profile endpoints exist only when asked for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	opts := svc.Options()
	logger.Info("listening", "addr", *addr,
		"workers", opts.Workers, "queue", opts.QueueDepth, "cache", opts.CacheEntries)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, let in-flight requests (and the
	// jobs they wait on) finish within the window, then stop the workers.
	logger.Info("draining", "window", drainwindow.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainwindow)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown error", "err", err.Error())
	}
	mgr.Close()
	svc.Close()
	// Flush queued spans before exit so the last requests of a drain are
	// visible in the collector; bounded by whatever drain window remains.
	if err := exporter.Close(shutdownCtx); err != nil {
		logger.Warn("otlp drain incomplete", "err", err.Error(), "dropped", exporter.Dropped())
	}
	logger.Info("drained, bye")
}

// parseWedges maps the -wedges flag value to a service.Options.Wedges
// count: "auto" sizes from GOMAXPROCS, otherwise a non-negative integer.
func parseWedges(s string) (int, error) {
	if s == "auto" {
		return core.AutoWedges, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid -wedges %q: want a non-negative integer or 'auto'", s)
	}
	return n, nil
}
