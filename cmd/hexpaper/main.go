// Command hexpaper regenerates the tables and figures of the paper's
// evaluation (Section 4) plus the extension and ablation experiments.
//
// Usage:
//
//	hexpaper -exp table1                 # one experiment at paper scale
//	hexpaper -exp all -runs 50           # everything, reduced run count
//	hexpaper -list
//
// Experiments: table1 table2 table3, fig5 fig8–fig21 (the paper's
// evaluation, incl. fig15-crash/fig16-crash fail-silent variants),
// treecompare hexplus gradient embedding endtoend ringosc scaling gals
// brokenwires (extensions and baselines), and ablation-guard
// ablation-epsilon ablation-linktimeouts. Use -json for machine-readable
// output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiment"
)

type runner func(experiment.Options) (string, map[string]float64, error)

func figRunner(f func(experiment.Options) (*experiment.FigResult, error)) runner {
	return func(o experiment.Options) (string, map[string]float64, error) {
		fig, err := f(o)
		if err != nil {
			return "", nil, err
		}
		return fig.Render(), fig.Data, nil
	}
}

var experiments = map[string]runner{
	"table1": func(o experiment.Options) (string, map[string]float64, error) {
		t, err := experiment.Table1(o)
		if err != nil {
			return "", nil, err
		}
		return t.String(), nil, nil
	},
	"table2": func(o experiment.Options) (string, map[string]float64, error) {
		t, err := experiment.Table2(o)
		if err != nil {
			return "", nil, err
		}
		return t.String(), nil, nil
	},
	"table3": func(o experiment.Options) (string, map[string]float64, error) {
		t, _, err := experiment.Table3(o, 5)
		if err != nil {
			return "", nil, err
		}
		return t.String(), nil, nil
	},
	"fig5":             figRunner(experiment.Fig5),
	"fig8":             figRunner(experiment.Fig8),
	"fig9":             figRunner(experiment.Fig9),
	"fig10":            figRunner(experiment.Fig10),
	"fig11":            figRunner(experiment.Fig11),
	"fig12":            figRunner(experiment.Fig12),
	"fig13":            figRunner(experiment.Fig13),
	"fig14":            figRunner(experiment.Fig14),
	"fig15":            figRunner(experiment.Fig15),
	"fig15-crash":      figRunner(experiment.Fig15Crash),
	"fig16":            figRunner(experiment.Fig16),
	"fig16-crash":      figRunner(experiment.Fig16Crash),
	"fig17":            figRunner(experiment.Fig17),
	"fig18":            figRunner(experiment.Fig18),
	"fig19":            figRunner(experiment.Fig19),
	"fig20":            figRunner(experiment.Fig20),
	"fig21":            figRunner(experiment.Fig21),
	"treecompare":      figRunner(experiment.TreeCompare),
	"hexplus":          figRunner(experiment.ExtensionHexPlus),
	"gradient":         figRunner(experiment.GradientSkew),
	"embedding":        figRunner(experiment.EmbeddingComparison),
	"endtoend":         figRunner(experiment.EndToEnd),
	"ringosc":          figRunner(experiment.RingOscCompare),
	"scaling":          figRunner(experiment.Scaling),
	"gals":             figRunner(experiment.GALS),
	"brokenwires":      figRunner(experiment.BrokenWires),
	"ablation-guard":   figRunner(experiment.AblationGuard),
	"ablation-epsilon": figRunner(experiment.AblationEpsilon),
	"ablation-linktimeouts": func(o experiment.Options) (string, map[string]float64, error) {
		fig, err := experiment.AblationLinkTimeouts(o, 2)
		if err != nil {
			return "", nil, err
		}
		return fig.Render(), fig.Data, nil
	},
}

// order lists experiments in the paper's presentation order for -exp all.
var order = []string{
	"fig8", "fig9", "table1", "fig10", "fig11", "fig12", "fig5",
	"table2", "fig13", "fig14", "fig15", "fig16", "fig15-crash", "fig16-crash", "fig17",
	"table3", "fig18", "fig19",
	"fig20", "fig21", "treecompare", "hexplus", "gradient", "embedding", "endtoend", "ringosc", "scaling", "gals", "brokenwires",
	"ablation-guard", "ablation-epsilon", "ablation-linktimeouts",
}

// jsonResult is the machine-readable output of one experiment (-json).
type jsonResult struct {
	ID      string             `json:"id"`
	Seconds float64            `json:"seconds"`
	Data    map[string]float64 `json:"data,omitempty"`
	Text    string             `json:"text"`
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all')")
		runs    = flag.Int("runs", 0, "runs per data point (0 = paper's 250)")
		l       = flag.Int("L", 0, "grid length (0 = paper's 50)")
		w       = flag.Int("W", 0, "grid width (0 = paper's 20)")
		seed    = flag.Uint64("seed", 1, "master seed")
		list    = flag.Bool("list", false, "list experiment ids")
		jsonOut = flag.Bool("json", false, "emit one JSON object per experiment instead of text")
	)
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(experiments))
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: hexpaper -exp <id>|all [-runs N] [-L n] [-W n] [-seed n]; -list for ids")
		os.Exit(2)
	}

	o := experiment.Options{L: *l, W: *w, Runs: *runs, Seed: *seed}
	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		run, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "hexpaper: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		out, data, err := run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hexpaper: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(jsonResult{
				ID:      id,
				Seconds: time.Since(start).Seconds(),
				Data:    data,
				Text:    out,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "hexpaper: %s: %v\n", id, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("### %s (%.1fs)\n\n%s\n", id, time.Since(start).Seconds(), out)
	}
}
