package main

import "testing"

// TestOrderCoversRegistry ensures -exp all runs every registered
// experiment and that every id in the order list resolves.
func TestOrderCoversRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range order {
		if _, ok := experiments[id]; !ok {
			t.Errorf("order lists unknown experiment %q", id)
		}
		if seen[id] {
			t.Errorf("order lists %q twice", id)
		}
		seen[id] = true
	}
	for id := range experiments {
		if !seen[id] {
			t.Errorf("experiment %q missing from -exp all order", id)
		}
	}
}
