// Command hexsim runs a single HEX pulse simulation and prints the wave and
// its skew statistics.
//
// Usage:
//
//	hexsim -L 50 -W 20 -scenario iii -faults 2 -fault-type byzantine -seed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/trace"

	hex "repro"
)

func main() {
	var (
		l         = flag.Int("L", 50, "grid length (layers 0..L)")
		w         = flag.Int("W", 20, "grid width (columns)")
		scenario  = flag.String("scenario", "i", "layer-0 skew scenario: i|ii|iii|iv (or zero|udminus|udplus|ramp)")
		faults    = flag.Int("faults", 0, "number of faulty nodes (random placement under Condition 1)")
		faultType = flag.String("fault-type", "byzantine", "fault type: byzantine|fail-silent")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		heat      = flag.Bool("heat", true, "print the wave heat map")
		layers    = flag.Bool("layers", false, "print per-layer trigger time table")
		csv       = flag.Bool("csv", false, "print the wave as CSV (layer,column,time_ns,status) and exit")
		svg       = flag.Bool("svg", false, "print the wave as an SVG heat map and exit")
		plus      = flag.Bool("plus", false, "use the HEX+ augmented topology (Section 5)")
		timeout   = flag.Duration("timeout", 0, "abort the simulation after this wall-clock duration (0 = none)")
		traceTail = flag.Int("trace-tail", 0, "keep the last N simulation events in a flight recorder; the audited window is reported after the run and dumped as JSON to stderr on failure (0 = off)")
		wedges    = flag.String("wedges", "0", "wedge-parallel engine: number of column wedges (worker goroutines), or 'auto' for GOMAXPROCS; 0/1 = serial; results are bit-identical to serial; forced serial while -trace-tail is active")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file; combine with -wedges to profile the parallel engine (see 'make prof-parallel')")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		// Deferred so the profile reflects the heap after the run, including
		// anything the arena pool retains.
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	if *csv && *svg {
		fail(fmt.Errorf("-csv and -svg are mutually exclusive; pass at most one output format"))
	}

	sc, err := source.Parse(*scenario)
	if err != nil {
		fail(err)
	}
	g, err := hex.NewGrid(*l, *w)
	if *plus {
		g, err = hex.NewGridPlus(*l, *w)
	}
	if err != nil {
		fail(err)
	}
	plan := hex.NewFaultPlan(g)
	if *faults > 0 {
		var behavior fault.Behavior
		switch *faultType {
		case "byzantine":
			behavior = hex.Byzantine
		case "fail-silent", "failsilent", "crash":
			behavior = hex.FailSilent
		default:
			fail(fmt.Errorf("unknown fault type %q", *faultType))
		}
		placed, err := hex.PlaceRandomFaults(g, plan, *faults, behavior, hex.NewRNG(*seed))
		if err != nil {
			fail(err)
		}
		fmt.Printf("faulty nodes (%s): %s\n", behavior, render.Mark(g, placed))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	nWedges, err := parseWedges(*wedges)
	if err != nil {
		fail(err)
	}
	cfg := hex.PulseConfig{Grid: g, Scenario: sc, Faults: plan, Seed: *seed, Wedges: nWedges, Context: ctx}
	var fr *obs.FlightRecorder
	if *traceTail > 0 {
		fr = obs.NewFlightRecorder(*traceTail)
		cfg.Trace = fr
	}
	rep, err := hex.RunPulse(cfg)
	if fr != nil {
		// Audit the captured window against the run's own topology and
		// fault plan; the raw events are emitted only when the run failed
		// (cancellation, infeasible config) or the audit found a violation.
		dump := obs.NewFlightDump(fr, &trace.Auditor{G: g.Graph, Plan: plan, Params: hex.DefaultParams()}, err != nil)
		fmt.Fprintf(os.Stderr, "hexsim: flight recorder: captured=%d dropped=%d complete=%t audit_ok=%t\n",
			dump.Captured, dump.Dropped, dump.Complete, dump.AuditOK)
		if dump.AuditError != "" {
			fmt.Fprintf(os.Stderr, "hexsim: flight audit: %s\n", dump.AuditError)
		}
		if len(dump.Events) > 0 {
			json.NewEncoder(os.Stderr).Encode(dump)
		}
	}
	if err != nil {
		fail(err)
	}
	if *csv {
		fmt.Print(render.WaveCSV(rep.Wave, g))
		return
	}
	if *svg {
		fmt.Print(render.WaveSVG(rep.Wave, g, 10))
		return
	}
	if *heat {
		fmt.Println(render.WaveHeat(rep.Wave, 0))
	}
	if *layers {
		fmt.Println(render.WaveLayerSeries(rep.Wave, "per-layer trigger times"))
	}
	fmt.Printf("grid %dx%d, scenario (%s), seed %d\n", *l, *w, sc.Name(), *seed)
	printSummary("intra-layer skew [ns]", rep.IntraSummary)
	printSummary("inter-layer skew [ns]", rep.InterSummary)

	delta0 := analysis.SkewPotential(rep.Wave, g, 0, hex.PaperBounds.Min)
	bound := hex.Theorem1Bound(*l, *w, hex.PaperBounds, delta0)
	fmt.Printf("layer-0 skew potential Δ0 = %v; Theorem 1 bound on σ = %v\n", delta0, bound)
	fmt.Printf("events executed: %d\n", rep.Result.Events)
}

// parseWedges maps the -wedges flag value to a PulseConfig.Wedges count:
// "auto" sizes from GOMAXPROCS, otherwise a non-negative integer.
func parseWedges(s string) (int, error) {
	if s == "auto" {
		return hex.AutoWedges, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid -wedges %q: want a non-negative integer or 'auto'", s)
	}
	return n, nil
}

func printSummary(label string, s stats.Summary) {
	fmt.Printf("%-24s min=%.3f q5=%.3f avg=%.3f q95=%.3f max=%.3f (n=%d)\n",
		label, s.Min, s.Q5, s.Avg, s.Q95, s.Max, s.N)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hexsim:", err)
	os.Exit(1)
}
