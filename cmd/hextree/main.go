// Command hextree runs the HEX vs. clock-tree comparison behind the
// paper's title claim: neighbor wire length, neighbor skew, and the blast
// radius of a single fault, as functions of system size.
//
// Usage:
//
//	hextree -runs 50 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	var (
		runs = flag.Int("runs", 50, "runs per size")
		seed = flag.Uint64("seed", 1, "master seed")
	)
	flag.Parse()

	fig, err := experiment.TreeCompare(experiment.Options{Runs: *runs * 5, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hextree:", err)
		os.Exit(1)
	}
	fmt.Println(fig.Render())
}
