// Command benchjson converts `go test -bench` text output into a stable,
// diff-friendly JSON document so benchmark baselines can be committed and
// compared across PRs without external tooling.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 5 . | benchjson -out BENCH.json
//
// Repeated samples of the same benchmark (from -count) are aggregated into
// mean/min/max per metric unit, which is what a baseline comparison needs;
// the raw sample values are preserved alongside for re-analysis.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metric aggregates the samples of one unit (ns/op, allocs/op, events/s …)
// across -count repetitions of a benchmark.
type Metric struct {
	Mean    float64   `json:"mean"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Samples []float64 `json:"samples"`
}

// Benchmark is one named benchmark with all its metrics.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int                `json:"runs"`
	Metrics map[string]*Metric `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	Pkg        string       `json:"pkg,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

// gomaxprocsSuffix strips the trailing -N procs marker go test appends to
// benchmark names when GOMAXPROCS > 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	rep := &Report{}
	byName := map[string]*Benchmark{}
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if err := addLine(byName, &order, line); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(order) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	for _, name := range order {
		b := byName[name]
		for _, m := range b.Metrics {
			sort.Float64s(m.Samples)
			m.Min = m.Samples[0]
			m.Max = m.Samples[len(m.Samples)-1]
			var sum float64
			for _, v := range m.Samples {
				sum += v
			}
			m.Mean = sum / float64(len(m.Samples))
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// addLine parses one result line: name, iteration count, then value/unit
// pairs. Sub-benchmarks keep their full slash-joined name.
func addLine(byName map[string]*Benchmark, order *[]string, line string) error {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return fmt.Errorf("want an even field count of at least 4, got %d", len(fields))
	}
	name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
	iters, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return fmt.Errorf("iteration count: %w", err)
	}
	b := byName[name]
	if b == nil {
		b = &Benchmark{Name: name, Metrics: map[string]*Metric{}}
		byName[name] = b
		*order = append(*order, name)
	}
	b.Runs++
	add := func(unit string, v float64) {
		m := b.Metrics[unit]
		if m == nil {
			m = &Metric{}
			b.Metrics[unit] = m
		}
		m.Samples = append(m.Samples, v)
	}
	add("iterations", iters)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("value for %s: %w", fields[i+1], err)
		}
		add(fields[i+1], v)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
