// Command benchjson converts `go test -bench` text output into a stable,
// diff-friendly JSON document so benchmark baselines can be committed and
// compared across PRs without external tooling.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 5 . | benchjson -out BENCH.json
//	benchjson -compare [-fail-above 5] OLD.json NEW.json
//
// Repeated samples of the same benchmark (from -count) are aggregated into
// mean/min/max per metric unit, which is what a baseline comparison needs;
// the raw sample values are preserved alongside for re-analysis.
//
// The -compare mode prints a per-benchmark delta table for the headline
// metrics (ns/op, events/s, B/op, allocs/op), direction-aware: a higher
// events/s is an improvement, a higher ns/op is a regression. With
// -fail-above P, the command exits non-zero if any benchmark regresses by
// more than P percent on a timing metric (ns/op or events/s), which is the
// contract the bench-compare make target and the CI bench smoke rely on;
// -gate-filter RE narrows that gate to matching benchmark names, so e.g.
// wedge-scaling numbers recorded on a low-core machine inform without
// failing the build.
//
// The JSON header records goos/goarch/cpu plus the GOMAXPROCS the run used
// and any wedge counts found in .../wedges=N sub-benchmark names, so a
// committed baseline declares the conditions it was measured under.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Metric aggregates the samples of one unit (ns/op, allocs/op, events/s …)
// across -count repetitions of a benchmark.
type Metric struct {
	Mean    float64   `json:"mean"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Samples []float64 `json:"samples"`
}

// Benchmark is one named benchmark with all its metrics.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int                `json:"runs"`
	Metrics map[string]*Metric `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Gomaxprocs is the parallelism the benchmarks ran under, recovered
	// from the -N suffix go test appends to benchmark names (1 when no
	// suffix is present). Wedge-scaling numbers are meaningless without it:
	// a wedges=8 run on GOMAXPROCS=1 measures coordination overhead, not
	// scaling, so the comparison reader needs the recording conditions.
	Gomaxprocs int `json:"gomaxprocs,omitempty"`
	// Wedges lists the wedge counts present in the converted benchmarks'
	// names (the .../wedges=N sub-benchmarks), ascending, so a baseline
	// declares which parallel configurations it covers.
	Wedges     []int        `json:"wedges,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

// gomaxprocsSuffix strips the trailing -N procs marker go test appends to
// benchmark names when GOMAXPROCS > 1; the value is preserved in the
// report header.
var gomaxprocsSuffix = regexp.MustCompile(`-(\d+)$`)

// wedgesName extracts the wedge count from a .../wedges=N sub-benchmark.
var wedgesName = regexp.MustCompile(`(?:^|/)wedges=(\d+)(?:/|$)`)

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	compare := flag.Bool("compare", false, "compare two JSON reports: benchjson -compare OLD.json NEW.json")
	failAbove := flag.Float64("fail-above", 0, "with -compare: exit 1 if any benchmark regresses more than this percent on ns/op or events/s (0 disables)")
	gateFilter := flag.String("gate-filter", "", "with -compare: regexp restricting which benchmarks the -fail-above gate applies to; the delta table always shows everything (use to gate only the serial path when the machine cannot reproduce parallel scaling)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare wants exactly two arguments: OLD.json NEW.json"))
		}
		var gate *regexp.Regexp
		if *gateFilter != "" {
			var err error
			if gate, err = regexp.Compile(*gateFilter); err != nil {
				fatal(fmt.Errorf("-gate-filter: %w", err))
			}
		}
		oldRep, err := readReport(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		newRep, err := readReport(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		regressed := writeComparison(os.Stdout, oldRep, newRep, *failAbove, gate)
		if *failAbove > 0 && len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.1f%%: %s\n",
				len(regressed), *failAbove, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}

	rep, err := convert(os.Stdin)
	if err != nil {
		fatal(err)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// convert parses `go test -bench` text output into an aggregated Report.
func convert(r io.Reader) (*Report, error) {
	rep := &Report{}
	byName := map[string]*Benchmark{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if err := addLine(rep, byName, &order, line); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	if rep.Gomaxprocs == 0 {
		rep.Gomaxprocs = 1 // go test appends no suffix at GOMAXPROCS=1
	}

	for _, name := range order {
		b := byName[name]
		for _, m := range b.Metrics {
			sort.Float64s(m.Samples)
			m.Min = m.Samples[0]
			m.Max = m.Samples[len(m.Samples)-1]
			var sum float64
			for _, v := range m.Samples {
				sum += v
			}
			m.Mean = sum / float64(len(m.Samples))
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, nil
}

// addLine parses one result line: name, iteration count, then value/unit
// pairs. Sub-benchmarks keep their full slash-joined name; the -N procs
// suffix and any wedges=N path segment are folded into the report header.
func addLine(rep *Report, byName map[string]*Benchmark, order *[]string, line string) error {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return fmt.Errorf("want an even field count of at least 4, got %d", len(fields))
	}
	name := fields[0]
	if m := gomaxprocsSuffix.FindStringSubmatch(name); m != nil {
		if n, err := strconv.Atoi(m[1]); err == nil && n > rep.Gomaxprocs {
			rep.Gomaxprocs = n
		}
		name = name[:len(name)-len(m[0])]
	}
	if m := wedgesName.FindStringSubmatch(name); m != nil {
		if n, err := strconv.Atoi(m[1]); err == nil {
			i := sort.SearchInts(rep.Wedges, n)
			if i == len(rep.Wedges) || rep.Wedges[i] != n {
				rep.Wedges = append(rep.Wedges, 0)
				copy(rep.Wedges[i+1:], rep.Wedges[i:])
				rep.Wedges[i] = n
			}
		}
	}
	iters, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return fmt.Errorf("iteration count: %w", err)
	}
	b := byName[name]
	if b == nil {
		b = &Benchmark{Name: name, Metrics: map[string]*Metric{}}
		byName[name] = b
		*order = append(*order, name)
	}
	b.Runs++
	add := func(unit string, v float64) {
		m := b.Metrics[unit]
		if m == nil {
			m = &Metric{}
			b.Metrics[unit] = m
		}
		m.Samples = append(m.Samples, v)
	}
	add("iterations", iters)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("value for %s: %w", fields[i+1], err)
		}
		add(fields[i+1], v)
	}
	return nil
}

// compareUnits are the headline metrics shown in the delta table, in column
// order. higherIsBetter flips the sign convention: for events/s a positive
// raw delta is an improvement, for ns/op it is a regression.
var compareUnits = []struct {
	unit           string
	higherIsBetter bool
	timing         bool // participates in the -fail-above gate
}{
	{"ns/op", false, true},
	{"events/s", true, true},
	{"runs/s", true, true},
	{"B/op", false, false},
	{"allocs/op", false, false},
}

// delta is the signed percentage change of one metric between two reports,
// normalized so positive always means better.
type delta struct {
	old, new float64
	pct      float64 // (new-old)/old in percent, sign-normalized to better>0
	ok       bool    // both sides present with a nonzero old mean
}

// compareReports lines up the benchmarks of two reports by name and
// computes normalized deltas for the headline metrics. Benchmarks present
// on only one side are listed with no deltas rather than dropped, so a
// renamed benchmark is visible instead of silently ungated.
func compareReports(oldRep, newRep *Report) (names []string, table map[string][]delta) {
	oldBy := map[string]*Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]*Benchmark{}
	for _, b := range newRep.Benchmarks {
		newBy[b.Name] = b
	}
	for _, b := range newRep.Benchmarks {
		names = append(names, b.Name)
	}
	for _, b := range oldRep.Benchmarks {
		if newBy[b.Name] == nil {
			names = append(names, b.Name)
		}
	}

	table = map[string][]delta{}
	for _, name := range names {
		ds := make([]delta, len(compareUnits))
		ob, nb := oldBy[name], newBy[name]
		for i, cu := range compareUnits {
			var om, nm *Metric
			if ob != nil {
				om = ob.Metrics[cu.unit]
			}
			if nb != nil {
				nm = nb.Metrics[cu.unit]
			}
			if om == nil || nm == nil || om.Mean == 0 {
				continue
			}
			pct := (nm.Mean - om.Mean) / om.Mean * 100
			if !cu.higherIsBetter {
				pct = -pct
			}
			ds[i] = delta{old: om.Mean, new: nm.Mean, pct: pct, ok: true}
		}
		table[name] = ds
	}
	return names, table
}

// writeComparison prints the delta table and returns the names of
// benchmarks whose timing metrics regressed beyond failAbove percent
// (empty when failAbove <= 0). A non-nil gate restricts the failure check
// to matching benchmark names; the table itself is never filtered.
func writeComparison(w io.Writer, oldRep, newRep *Report, failAbove float64, gate *regexp.Regexp) []string {
	names, table := compareReports(oldRep, newRep)

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, cu := range compareUnits {
		fmt.Fprintf(tw, "\told %s\tnew %s\tdelta", cu.unit, cu.unit)
	}
	fmt.Fprintln(tw)

	var regressed []string
	for _, name := range names {
		fmt.Fprint(tw, strings.TrimPrefix(name, "Benchmark"))
		bad := false
		for i, d := range table[name] {
			if !d.ok {
				fmt.Fprint(tw, "\t-\t-\t-")
				continue
			}
			// The sign convention in the printed delta column follows the
			// raw metric (new vs old); the normalized d.pct drives the
			// better/worse marker and the gate.
			raw := (d.new - d.old) / d.old * 100
			marker := ""
			switch {
			case d.pct > 0.05:
				marker = " +"
			case d.pct < -0.05:
				marker = " -"
			}
			fmt.Fprintf(tw, "\t%s\t%s\t%+.1f%%%s", formatValue(d.old), formatValue(d.new), raw, marker)
			if compareUnits[i].timing && d.pct < -failAbove {
				bad = true
			}
		}
		fmt.Fprintln(tw)
		if failAbove > 0 && bad && (gate == nil || gate.MatchString(name)) {
			regressed = append(regressed, name)
		}
	}
	tw.Flush()
	return regressed
}

// formatValue renders a metric mean compactly: integers stay integral,
// large values keep no decimals, small ones keep two.
func formatValue(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case math.Abs(v) >= 1000:
		return strconv.FormatFloat(v, 'f', 0, 64)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}

// readReport loads a JSON report written by the convert mode.
func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(buf, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
