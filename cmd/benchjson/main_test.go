package main

import (
	"regexp"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkPulsePropagation/L100_W40-4   100  1000000 ns/op  3500000 events/s  120 B/op  3 allocs/op
BenchmarkPulsePropagation/L100_W40-4   100  1100000 ns/op  3300000 events/s  120 B/op  3 allocs/op
BenchmarkSweep-4                       10   9000000 ns/op  512 B/op  10 allocs/op
PASS
`

func TestConvertAggregates(t *testing.T) {
	rep, err := convert(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPU != "Intel(R) Xeon(R) CPU @ 2.10GHz" || rep.Goos != "linux" {
		t.Fatalf("header fields not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkPulsePropagation/L100_W40" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", b.Name)
	}
	if b.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", b.Runs)
	}
	ns := b.Metrics["ns/op"]
	if ns == nil || ns.Mean != 1050000 || ns.Min != 1000000 || ns.Max != 1100000 {
		t.Fatalf("ns/op aggregation wrong: %+v", ns)
	}
	ev := b.Metrics["events/s"]
	if ev == nil || ev.Mean != 3400000 {
		t.Fatalf("events/s aggregation wrong: %+v", ev)
	}
}

// report builds a single-benchmark report with the given headline means.
func report(name string, nsOp, eventsPerSec, bOp, allocs float64) *Report {
	return &Report{Benchmarks: []*Benchmark{{
		Name: name,
		Runs: 1,
		Metrics: map[string]*Metric{
			"ns/op":     {Mean: nsOp},
			"events/s":  {Mean: eventsPerSec},
			"B/op":      {Mean: bOp},
			"allocs/op": {Mean: allocs},
		},
	}}}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldRep := report("BenchmarkX", 1000, 1e6, 100, 5)
	newRep := report("BenchmarkX", 700, 1.4e6, 50, 2)
	var sb strings.Builder
	regressed := writeComparison(&sb, oldRep, newRep, 5, nil)
	if len(regressed) != 0 {
		t.Fatalf("improvement flagged as regression: %v\n%s", regressed, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"X", "ns/op", "events/s", "B/op", "allocs/op", "-30.0%", "+40.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareFlagsTimingRegression(t *testing.T) {
	oldRep := report("BenchmarkX", 1000, 1e6, 100, 5)
	// ns/op up 10%, events/s down 10%: both beyond a 5% gate.
	newRep := report("BenchmarkX", 1100, 0.9e6, 100, 5)
	var sb strings.Builder
	regressed := writeComparison(&sb, oldRep, newRep, 5, nil)
	if len(regressed) != 1 || regressed[0] != "BenchmarkX" {
		t.Fatalf("regression not flagged: %v\n%s", regressed, sb.String())
	}
	// The same delta passes a looser gate.
	regressed = writeComparison(&strings.Builder{}, oldRep, newRep, 15, nil)
	if len(regressed) != 0 {
		t.Fatalf("regression within a 15%% gate was flagged: %v", regressed)
	}
	// And is reported but not gated when the gate is disabled.
	regressed = writeComparison(&strings.Builder{}, oldRep, newRep, 0, nil)
	if len(regressed) != 0 {
		t.Fatalf("disabled gate still flagged: %v", regressed)
	}
}

func TestCompareMemoryOnlyRegressionNotGated(t *testing.T) {
	oldRep := report("BenchmarkX", 1000, 1e6, 100, 5)
	// Allocations doubled but timing held: the gate covers timing only.
	newRep := report("BenchmarkX", 1000, 1e6, 200, 10)
	regressed := writeComparison(&strings.Builder{}, oldRep, newRep, 5, nil)
	if len(regressed) != 0 {
		t.Fatalf("memory-only delta tripped the timing gate: %v", regressed)
	}
}

func TestCompareDisjointBenchmarksListed(t *testing.T) {
	oldRep := report("BenchmarkGone", 1000, 1e6, 100, 5)
	newRep := report("BenchmarkNew", 900, 1.1e6, 100, 5)
	var sb strings.Builder
	regressed := writeComparison(&sb, oldRep, newRep, 5, nil)
	if len(regressed) != 0 {
		t.Fatalf("disjoint benchmarks flagged: %v", regressed)
	}
	out := sb.String()
	if !strings.Contains(out, "Gone") || !strings.Contains(out, "New") {
		t.Fatalf("benchmarks present on only one side were dropped:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing-metric placeholder absent:\n%s", out)
	}
}

func TestConvertRecordsRunConditions(t *testing.T) {
	text := `goos: linux
BenchmarkWedgeScaling/L1000_W500/wedges=1-8  3  800000000 ns/op  3.6e6 events/s
BenchmarkWedgeScaling/L1000_W500/wedges=4-8  3  300000000 ns/op  1.1e7 events/s
BenchmarkWedgeScaling/L1000_W500/wedges=2-8  3  500000000 ns/op  6.9e6 events/s
PASS
`
	rep, err := convert(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gomaxprocs != 8 {
		t.Fatalf("Gomaxprocs = %d, want 8", rep.Gomaxprocs)
	}
	if len(rep.Wedges) != 3 || rep.Wedges[0] != 1 || rep.Wedges[1] != 2 || rep.Wedges[2] != 4 {
		t.Fatalf("Wedges = %v, want [1 2 4]", rep.Wedges)
	}
	if rep.Benchmarks[0].Name != "BenchmarkWedgeScaling/L1000_W500/wedges=1" {
		t.Fatalf("procs suffix handling broke the name: %q", rep.Benchmarks[0].Name)
	}
}

func TestConvertDefaultsGomaxprocsToOne(t *testing.T) {
	rep, err := convert(strings.NewReader("BenchmarkX 10 100 ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gomaxprocs != 1 {
		t.Fatalf("Gomaxprocs = %d, want 1 (no -N suffix)", rep.Gomaxprocs)
	}
}

func TestCompareGateFilter(t *testing.T) {
	oldRep := report("BenchmarkWedgeScaling/wedges=8", 1000, 1e6, 100, 5)
	oldRep.Benchmarks = append(oldRep.Benchmarks,
		report("BenchmarkWedgeScaling/wedges=1", 1000, 1e6, 100, 5).Benchmarks...)
	newRep := report("BenchmarkWedgeScaling/wedges=8", 1500, 0.7e6, 100, 5) // -50% timing
	newRep.Benchmarks = append(newRep.Benchmarks,
		report("BenchmarkWedgeScaling/wedges=1", 1020, 0.98e6, 100, 5).Benchmarks...) // -2%

	// Ungated: the wedges=8 regression fails.
	if regressed := writeComparison(&strings.Builder{}, oldRep, newRep, 5, nil); len(regressed) != 1 {
		t.Fatalf("ungated comparison: %v", regressed)
	}
	// Gated to the serial path: the parallel regression informs but does
	// not fail; the serial 2% stays inside the gate.
	gate := regexp.MustCompile(`wedges=1$`)
	var sb strings.Builder
	if regressed := writeComparison(&sb, oldRep, newRep, 5, gate); len(regressed) != 0 {
		t.Fatalf("gate-filtered comparison flagged: %v", regressed)
	}
	// The table still shows the filtered-out benchmark.
	if !strings.Contains(sb.String(), "wedges=8") {
		t.Fatalf("gate filter dropped a benchmark from the table:\n%s", sb.String())
	}
}

func TestCompareMissingMetricSkipped(t *testing.T) {
	oldRep := report("BenchmarkX", 1000, 1e6, 100, 5)
	newRep := &Report{Benchmarks: []*Benchmark{{
		Name:    "BenchmarkX",
		Metrics: map[string]*Metric{"ns/op": {Mean: 1500}},
	}}}
	var sb strings.Builder
	regressed := writeComparison(&sb, oldRep, newRep, 5, nil)
	if len(regressed) != 1 {
		t.Fatalf("ns/op regression with missing events/s not flagged: %v\n%s", regressed, sb.String())
	}
}
